//! The canonical mirror: a brute-force model of the whole system.
//!
//! The mirror tracks the ground-truth population and query set, decides
//! which scheduled events are valid (invalid ones become no-ops on
//! *every* backend identically — the property that keeps shrunk
//! schedules executable), and computes the expected answer of every
//! query per tick via the `igern_core::naive` oracles.

use std::collections::BTreeMap;
use std::sync::Arc;

use igern_core::naive;
use igern_core::processor::Algorithm;
use igern_core::types::ObjectKind;
use igern_core::{NetScratch, NetworkSpace};
use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;

use crate::events::{sim_network, Plan, SimEvent};

/// Ground truth for one run. All state transitions are pure and
/// deterministic; backends only ever see events the mirror admitted.
pub struct Mirror {
    space: Aabb,
    /// Live objects by id.
    live: BTreeMap<u32, (ObjectKind, Point)>,
    /// Ids whose grid state was corrupted by [`SimEvent::ForceDesync`].
    /// A desynced object behaves like a removed one (the store's search
    /// layer skips its stale bucket entry) but its id is poisoned: the
    /// mirror never re-admits it.
    desynced: std::collections::BTreeSet<u32>,
    /// Live queries: id → (anchor, algorithm).
    queries: BTreeMap<u32, (u32, Algorithm)>,
    /// Pinned object (never removable or desyncable): the victim
    /// client's standing anchor, or — on server plans without one —
    /// the workload client's tick-barrier anchor (see
    /// [`crate::events::Plan::pinned_anchor`]).
    pinned: Option<u32>,
    /// Whether [`SimEvent::KillRestart`] is admissible: the plan runs a
    /// served backend AND that backend keeps a write-ahead log.
    durable_server: bool,
    /// Network-distance plans carry the road graph and a Dijkstra
    /// scratch; answers come from the `naive::*_net` oracles instead of
    /// the Euclidean ones.
    net: Option<(Arc<NetworkSpace>, NetScratch)>,
}

impl Mirror {
    /// A mirror over the plan's initial population.
    pub fn new(plan: &Plan) -> Self {
        Mirror {
            space: plan.space,
            live: plan
                .initial
                .iter()
                .map(|&(id, kind, x, y)| (id, (kind, Point::new(x, y))))
                .collect(),
            desynced: Default::default(),
            queries: BTreeMap::new(),
            pinned: plan.pinned_anchor(),
            durable_server: plan.server && plan.durable,
            net: plan.network.then(|| {
                let ns = NetworkSpace::from_network(&sim_network(plan.seed, plan.space));
                (Arc::new(ns), NetScratch::default())
            }),
        }
    }

    /// The road graph of a network-distance plan (shared with the
    /// backends so everyone routes over the same edges).
    pub fn network(&self) -> Option<&Arc<NetworkSpace>> {
        self.net.as_ref().map(|(ns, _)| ns)
    }

    /// Whether `event` is valid in the current state. Invalid events
    /// must be dropped by the executor before any backend sees them:
    /// the backends would diverge on them (panic offline, ERROR frames
    /// on the wire).
    pub fn admits(&self, event: &SimEvent) -> bool {
        match *event {
            SimEvent::Move { id, x, y } => {
                self.live.contains_key(&id) && self.space.contains(Point::new(x, y))
            }
            SimEvent::Insert { id, x, y, .. } => {
                !self.live.contains_key(&id)
                    && !self.desynced.contains(&id)
                    && self.space.contains(Point::new(x, y))
            }
            SimEvent::Remove { id } => {
                self.live.contains_key(&id)
                    && self.pinned != Some(id)
                    && !self.queries.values().any(|&(a, _)| a == id)
            }
            SimEvent::AddQuery { q, anchor, algo } => {
                if self.queries.contains_key(&q) {
                    return false;
                }
                let Some(&(kind, _)) = self.live.get(&anchor) else {
                    return false;
                };
                if algo.is_bichromatic() && kind != ObjectKind::A {
                    return false;
                }
                !matches!(
                    algo,
                    Algorithm::IgernMonoK(0) | Algorithm::IgernBiK(0) | Algorithm::Knn(0)
                )
            }
            SimEvent::RemoveQuery { q } => self.queries.contains_key(&q),
            SimEvent::ForceDesync { id } => {
                self.live.contains_key(&id)
                    && self.pinned != Some(id)
                    && !self.queries.values().any(|&(a, _)| a == id)
            }
            SimEvent::StallWorker { .. }
            | SimEvent::ClientStall { .. }
            | SimEvent::FrameFault { .. } => true,
            // A crash only makes sense against a server that can come
            // back: without a WAL the restarted backend would be empty.
            SimEvent::KillRestart => self.durable_server,
        }
    }

    /// Apply an admitted event. Call only after [`Mirror::admits`].
    pub fn apply(&mut self, event: &SimEvent) {
        match *event {
            SimEvent::Move { id, x, y } => {
                self.live.get_mut(&id).expect("admitted").1 = Point::new(x, y);
            }
            SimEvent::Insert { id, kind, x, y } => {
                self.live.insert(id, (kind, Point::new(x, y)));
            }
            SimEvent::Remove { id } => {
                self.live.remove(&id);
            }
            SimEvent::AddQuery { q, anchor, algo } => {
                self.queries.insert(q, (anchor, algo));
            }
            SimEvent::RemoveQuery { q } => {
                self.queries.remove(&q);
            }
            SimEvent::ForceDesync { id } => {
                self.live.remove(&id);
                self.desynced.insert(id);
            }
            SimEvent::StallWorker { .. }
            | SimEvent::ClientStall { .. }
            | SimEvent::FrameFault { .. }
            | SimEvent::KillRestart => {}
        }
    }

    /// Live query ids, ascending.
    pub fn query_ids(&self) -> Vec<u32> {
        self.queries.keys().copied().collect()
    }

    /// Number of live objects.
    pub fn population(&self) -> usize {
        self.live.len()
    }

    /// The expected answer of query `q` under the current population,
    /// sorted by object id — computed by the brute-force definitions in
    /// [`igern_core::naive`] (and a direct k-NN scan for
    /// [`Algorithm::Knn`]).
    pub fn expected_answer(&mut self, q: u32) -> Vec<u32> {
        let &(anchor, algo) = self.queries.get(&q).expect("live query");
        let qpos = self.live.get(&anchor).expect("anchor live").1;
        let qid = Some(ObjectId(anchor));
        let all: Vec<(ObjectId, Point)> = self
            .live
            .iter()
            .map(|(&id, &(_, p))| (ObjectId(id), p))
            .collect();
        let of_kind = |want: ObjectKind| -> Vec<(ObjectId, Point)> {
            self.live
                .iter()
                .filter(|(_, &(k, _))| k == want)
                .map(|(&id, &(_, p))| (ObjectId(id), p))
                .collect()
        };
        let ids = match &mut self.net {
            Some((ns, scratch)) => match algo {
                Algorithm::IgernMono | Algorithm::Crnn | Algorithm::TplRepeat => {
                    naive::mono_rnn_net(ns, scratch, &all, qpos, qid)
                }
                Algorithm::IgernBi | Algorithm::VoronoiRepeat => naive::bi_rnn_net(
                    ns,
                    scratch,
                    &of_kind(ObjectKind::A),
                    &of_kind(ObjectKind::B),
                    qpos,
                    qid,
                ),
                Algorithm::IgernMonoK(k) => naive::mono_rknn_net(ns, scratch, &all, qpos, qid, k),
                Algorithm::IgernBiK(k) => naive::bi_rknn_net(
                    ns,
                    scratch,
                    &of_kind(ObjectKind::A),
                    &of_kind(ObjectKind::B),
                    qpos,
                    qid,
                    k,
                ),
                Algorithm::Knn(k) => naive::knn_net(ns, scratch, &all, qpos, qid, k),
            },
            None => match algo {
                Algorithm::IgernMono | Algorithm::Crnn | Algorithm::TplRepeat => {
                    naive::mono_rnn(&all, qpos, qid)
                }
                Algorithm::IgernBi | Algorithm::VoronoiRepeat => {
                    naive::bi_rnn(&of_kind(ObjectKind::A), &of_kind(ObjectKind::B), qpos, qid)
                }
                Algorithm::IgernMonoK(k) => naive::mono_rknn(&all, qpos, qid, k),
                Algorithm::IgernBiK(k) => naive::bi_rknn(
                    &of_kind(ObjectKind::A),
                    &of_kind(ObjectKind::B),
                    qpos,
                    qid,
                    k,
                ),
                Algorithm::Knn(k) => knn_oracle(&all, qpos, ObjectId(anchor), k),
            },
        };
        ids.into_iter().map(|o| o.0).collect()
    }
}

/// Brute-force k-NN: the `k` objects nearest to `q` (the anchor itself
/// excluded), sorted by id. Distance ties break by id, matching no
/// monitor in particular — ties are measure-zero under the generator's
/// continuous positions.
fn knn_oracle(all: &[(ObjectId, Point)], q: Point, anchor: ObjectId, k: usize) -> Vec<ObjectId> {
    let mut others: Vec<(f64, ObjectId)> = all
        .iter()
        .filter(|&&(id, _)| id != anchor)
        .map(|&(id, p)| (p.dist_sq(q), id))
        .collect();
    others.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    let mut ids: Vec<ObjectId> = others.into_iter().take(k).map(|(_, id)| id).collect();
    ids.sort_unstable();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{Plan, ScheduledEvent};

    fn plan() -> Plan {
        Plan {
            seed: 0,
            space: Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
            grid: 4,
            workers: 1,
            ticks: 1,
            server: false,
            batch: false,
            durable: false,
            network: false,
            victim_anchor: Some(3),
            initial: vec![
                (0, ObjectKind::A, 1.0, 1.0),
                (1, ObjectKind::A, 2.0, 1.0),
                (2, ObjectKind::B, 5.0, 5.0),
                (3, ObjectKind::B, 9.0, 9.0),
            ],
            events: Vec::<ScheduledEvent>::new(),
        }
    }

    #[test]
    fn invalid_events_are_rejected() {
        let mut m = Mirror::new(&plan());
        assert!(!m.admits(&SimEvent::Move {
            id: 9,
            x: 1.0,
            y: 1.0
        }));
        assert!(!m.admits(&SimEvent::Move {
            id: 0,
            x: 99.0,
            y: 1.0
        }));
        assert!(!m.admits(&SimEvent::Insert {
            id: 0,
            kind: ObjectKind::A,
            x: 1.0,
            y: 1.0
        }));
        // The victim anchor is pinned.
        assert!(!m.admits(&SimEvent::Remove { id: 3 }));
        assert!(!m.admits(&SimEvent::ForceDesync { id: 3 }));
        // Bichromatic query on a kind-B anchor.
        assert!(!m.admits(&SimEvent::AddQuery {
            q: 0,
            anchor: 2,
            algo: Algorithm::IgernBi
        }));
        assert!(!m.admits(&SimEvent::AddQuery {
            q: 0,
            anchor: 0,
            algo: Algorithm::Knn(0)
        }));

        let add = SimEvent::AddQuery {
            q: 0,
            anchor: 0,
            algo: Algorithm::IgernMono,
        };
        assert!(m.admits(&add));
        m.apply(&add);
        // Its anchor is now unremovable and undesyncable; the query id
        // is taken.
        assert!(!m.admits(&SimEvent::Remove { id: 0 }));
        assert!(!m.admits(&SimEvent::ForceDesync { id: 0 }));
        assert!(!m.admits(&add));

        // Desynced ids are poisoned for good.
        let de = SimEvent::ForceDesync { id: 2 };
        assert!(m.admits(&de));
        m.apply(&de);
        assert!(!m.admits(&SimEvent::Insert {
            id: 2,
            kind: ObjectKind::B,
            x: 1.0,
            y: 1.0
        }));
        assert!(!m.admits(&SimEvent::Move {
            id: 2,
            x: 1.0,
            y: 1.0
        }));
    }

    #[test]
    fn oracle_answers_match_naive_by_hand() {
        let mut m = Mirror::new(&plan());
        for (q, algo) in [
            (0, Algorithm::IgernMono),
            (1, Algorithm::IgernBi),
            (2, Algorithm::Knn(2)),
        ] {
            m.apply(&SimEvent::AddQuery { q, anchor: 0, algo });
        }
        // Mono RNN of (1,1): object 1 is nearest to it and vice versa.
        assert_eq!(m.expected_answer(0), vec![1]);
        // Bi RNN: B-objects whose nearest A is the query. Object 2 at
        // (5,5) is nearer to object 1 (2,1) than to q (1,1): blocked.
        // Object 3 at (9,9) likewise. Answer empty.
        assert_eq!(m.expected_answer(1), Vec::<u32>::new());
        // 2-NN of (1,1): objects 1 and 2.
        assert_eq!(m.expected_answer(2), vec![1, 2]);
    }
}
