//! The simulation event model and the seeded schedule generator.
//!
//! A [`Plan`] is the complete, self-contained description of one
//! simulation run: the data space, the initial population, and a flat
//! tick-stamped list of [`SimEvent`]s. Everything downstream — the
//! executor, the shrinker, the replay file — operates on plans, so a
//! failure found in a 300-tick seeded run can be cut down to a handful
//! of events and re-executed from a file with no generator in the loop.

use igern_core::processor::Algorithm;
use igern_core::types::ObjectKind;
use igern_geom::Aabb;
use igern_mobgen::rng::Rng64;
use igern_mobgen::schedule::{MotionEvent, MotionSchedule, ScheduleConfig};
use igern_mobgen::ObjKind;

/// A server→victim frame-stream corruption, applied to one pushed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFault {
    /// The frame is silently dropped.
    Drop,
    /// The frame is delivered twice.
    Duplicate,
    /// Only the first half of the frame's bytes are delivered,
    /// corrupting the victim's framing from that point on.
    Truncate,
    /// The frame is held back and delivered after the next one.
    Reorder,
}

impl FrameFault {
    /// Stable name used in replay files.
    pub fn name(self) -> &'static str {
        match self {
            FrameFault::Drop => "drop",
            FrameFault::Duplicate => "duplicate",
            FrameFault::Truncate => "truncate",
            FrameFault::Reorder => "reorder",
        }
    }

    /// Inverse of [`FrameFault::name`].
    pub fn by_name(s: &str) -> Option<Self> {
        Some(match s {
            "drop" => FrameFault::Drop,
            "duplicate" => FrameFault::Duplicate,
            "truncate" => FrameFault::Truncate,
            "reorder" => FrameFault::Reorder,
            _ => return None,
        })
    }
}

/// One thing that happens to the system under test.
///
/// Population and query events are applied through each backend's own
/// mutation path (store calls offline, wire frames on the server);
/// fault events are routed through the injection seams — the
/// [`igern_core::hooks::SimHooks`] trait for engine faults and the
/// memory transport's write tap for wire faults.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// Object `id` reports a new position (teleports included).
    Move { id: u32, x: f64, y: f64 },
    /// A dead object (re-)enters the space.
    Insert {
        id: u32,
        kind: ObjectKind,
        x: f64,
        y: f64,
    },
    /// A live object leaves the space.
    Remove { id: u32 },
    /// Register continuous query `q` anchored at object `anchor`.
    AddQuery {
        q: u32,
        anchor: u32,
        algo: Algorithm,
    },
    /// Drop continuous query `q`.
    RemoveQuery { q: u32 },
    /// Corrupt the grid state of object `id` mid-tick (the bucket
    /// desync fault, injected via `SpatialStore::debug_force_desync`).
    ForceDesync { id: u32 },
    /// Stall one evaluation worker of the sharded backend mid-tick.
    StallWorker { worker: u32 },
    /// The victim client stops draining its connection for this many
    /// ticks (drives the server's slow-consumer machinery).
    ClientStall { ticks: u32 },
    /// Corrupt one server→victim frame.
    FrameFault { fault: FrameFault },
    /// Crash-kill the served backend (no final tick, no clean
    /// snapshot) and restart it from its write-ahead log. Only valid on
    /// durable server plans; the executor re-subscribes its clients and
    /// every answer must still match the mirror afterwards.
    KillRestart,
}

/// A [`SimEvent`] pinned to the tick it happens on. Events of tick `t`
/// are applied before engine tick `t` runs; ticks are 1-based.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent {
    pub tick: u64,
    pub event: SimEvent,
}

/// A complete, self-contained simulation run description.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The seed the plan was generated from (0 for loaded replays that
    /// predate the field — informational only; execution never draws
    /// randomness).
    pub seed: u64,
    /// Data space of every backend's store.
    pub space: Aabb,
    /// Grid resolution (`n × n` cells).
    pub grid: usize,
    /// Worker count of the sharded backend (and the server when it has
    /// more than one worker).
    pub workers: usize,
    /// Number of engine ticks to run.
    pub ticks: u64,
    /// Whether the wire-protocol backend (server over the in-memory
    /// transport) participates.
    pub server: bool,
    /// Whether the served backend runs with a write-ahead log (a
    /// throwaway directory managed by the executor). Required for
    /// [`SimEvent::KillRestart`] to be admissible; implies the
    /// generator never emits [`SimEvent::ForceDesync`] — desync is an
    /// unrecoverable corruption the durability layer would silently
    /// repair on replay, splitting the backends from the mirror.
    pub durable: bool,
    /// Whether every backend evaluates through the shared-scan batch
    /// path (`igern_core::batch`) — must be answer-invisible.
    pub batch: bool,
    /// Whether every query runs under network (shortest-path) distance.
    /// The road graph is rebuilt deterministically from `seed` and
    /// `space` (see [`sim_network`]); plan generation snaps every
    /// position onto it, and the mirror checks answers against the
    /// Dijkstra oracles instead of the Euclidean ones.
    pub network: bool,
    /// Anchor of the fault-victim client's own subscription. The
    /// executor's mirror pins this object: it is never removed, so the
    /// victim's standing query stays semantically valid on the server
    /// while its connection is being abused.
    pub victim_anchor: Option<u32>,
    /// Initial population: `(id, kind, x, y)` — loaded into every
    /// backend's store before tick 1.
    pub initial: Vec<(u32, ObjectKind, f64, f64)>,
    /// The tick-stamped schedule, sorted by tick.
    pub events: Vec<ScheduledEvent>,
}

impl Plan {
    /// Events scheduled for `tick`, in order.
    pub fn events_at(&self, tick: u64) -> impl Iterator<Item = &SimEvent> {
        self.events
            .iter()
            .filter(move |e| e.tick == tick)
            .map(|e| &e.event)
    }

    /// The object the schedule must keep alive for the whole run: the
    /// fault-victim client's anchor when one is set, otherwise — on
    /// server plans — the smallest initial id, which the workload
    /// client anchors its tick-barrier subscription at (the server
    /// pushes `TICK_END` only to subscribed connections, and the
    /// executor uses that frame as its per-tick delivery barrier).
    /// The mirror refuses `Remove`/`ForceDesync` of this id.
    pub fn pinned_anchor(&self) -> Option<u32> {
        self.victim_anchor.or_else(|| {
            if self.server {
                self.initial.iter().map(|&(id, _, _, _)| id).min()
            } else {
                None
            }
        })
    }
}

/// Generator knobs; see [`crate::SimConfig`] for the user-facing
/// surface these derive from.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub seed: u64,
    pub ticks: u64,
    pub objects: usize,
    pub grid: usize,
    pub queries: usize,
    pub workers: usize,
    pub space: Aabb,
    pub faults: bool,
    pub server: bool,
    pub durable: bool,
    pub batch: bool,
    pub network: bool,
}

/// The road network a network-distance plan runs on: a deterministic
/// function of the plan's seed and space, so executors (and replayed
/// `.simreplay` files, which carry both) rebuild the exact same graph
/// without serializing it.
pub fn sim_network(seed: u64, space: Aabb) -> igern_mobgen::RoadNetwork {
    igern_mobgen::build_synthetic_network(&igern_mobgen::SyntheticNetworkConfig {
        k: 8,
        space,
        jitter: 0.2,
        highway_stride: 3,
        prune_fraction: 0.1,
        seed,
    })
}

/// The algorithm rotation new queries cycle through — all eight
/// processor algorithms, so every seeded run covers the full matrix.
pub const ALGO_CYCLE: [Algorithm; 8] = [
    Algorithm::IgernMono,
    Algorithm::Crnn,
    Algorithm::TplRepeat,
    Algorithm::IgernBi,
    Algorithm::VoronoiRepeat,
    Algorithm::IgernMonoK(2),
    Algorithm::IgernBiK(2),
    Algorithm::Knn(3),
];

/// Generate a plan from one seed: a churned motion schedule, a rotating
/// query population, and — with `faults` on — desyncs, worker stalls,
/// wire-frame corruption, slow-consumer stalls, a mass-delete storm, a
/// re-insert storm, and a teleport storm.
pub fn generate(cfg: &GenConfig) -> Plan {
    let n = cfg.objects.max(4);
    // Network plans snap every generated position onto the road graph:
    // objects live on edges, as road traffic does, and the snapped
    // stream is what makes the Euclidean lower bound tight in practice.
    let net_space = cfg
        .network
        .then(|| igern_core::NetworkSpace::from_network(&sim_network(cfg.seed, cfg.space)));
    let snap = |x: f64, y: f64| -> (f64, f64) {
        match &net_space {
            Some(ns) => {
                let p = ns.snap(igern_geom::Point::new(x, y)).point;
                (p.x, p.y)
            }
            None => (x, y),
        }
    };
    let n_a = n.div_ceil(2); // ids 0..n_a are kind A
    let queries = cfg.queries.clamp(1, n_a);
    // Initial query anchors are ids 0..queries (all kind A, so the full
    // algorithm rotation is valid); the victim client anchors at the
    // last id. All of them are protected from removal.
    let mut protected: Vec<u32> = (0..queries as u32).collect();
    let victim_anchor = (n - 1) as u32;
    if cfg.server {
        protected.push(victim_anchor);
    }

    let motion = MotionSchedule::generate(&ScheduleConfig {
        num_objects: n,
        ticks: cfg.ticks as usize,
        seed: cfg.seed,
        space: cfg.space,
        kind_a_fraction: Some(0.5),
        protected: protected.clone(),
        ..ScheduleConfig::default()
    });
    let kind_of = |id: u32| match motion.kinds()[id as usize] {
        ObjKind::A => ObjectKind::A,
        ObjKind::B => ObjectKind::B,
    };
    let initial: Vec<(u32, ObjectKind, f64, f64)> = motion
        .initial_positions()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (x, y) = snap(p.x, p.y);
            (i as u32, kind_of(i as u32), x, y)
        })
        .collect();

    // Generation-side bookkeeping so fault targets are picked among
    // plausible victims (the executor's mirror re-validates everything
    // anyway — required once the shrinker starts deleting events).
    let mut live: Vec<bool> = vec![true; n];
    let mut desynced: Vec<bool> = vec![false; n];
    let mut query_live: Vec<bool> = Vec::new();
    let mut query_anchor: Vec<u32> = Vec::new();
    let mut rng = Rng64::seed_from_u64(cfg.seed ^ 0x5b5a_d5ec_ce55_a21d);

    let mut events: Vec<ScheduledEvent> = Vec::new();
    let mut push = |tick: u64, event: SimEvent| events.push(ScheduledEvent { tick, event });

    // Tick 1 opens with the standing-query population.
    for q in 0..queries as u32 {
        push(
            1,
            SimEvent::AddQuery {
                q,
                anchor: q,
                algo: ALGO_CYCLE[q as usize % ALGO_CYCLE.len()],
            },
        );
        query_live.push(true);
        query_anchor.push(q);
    }

    let storm_delete = (cfg.ticks / 3).max(2);
    let storm_reinsert = (cfg.ticks / 2).max(3);
    let storm_teleport = (cfg.ticks * 2 / 3).max(4);

    let durable = cfg.durable && cfg.server && cfg.faults;
    let storm_kill = (cfg.ticks / 2 + 1).max(4);

    for t in 1..=cfg.ticks {
        // Crash-kill the durable server: always scheduled first in its
        // tick so every prior mutation sits behind a tick-end barrier
        // (and therefore in the log) before the plug is pulled. One
        // kill is scripted right after the re-insert storm so every
        // durable seed exercises recovery at least once.
        if durable && (t == storm_kill || (t > 1 && rng.gen_bool(0.03))) {
            push(t, SimEvent::KillRestart);
        }

        // Base motion (already includes background churn + teleports).
        for e in motion.events(t as usize - 1) {
            match *e {
                MotionEvent::Move { id, pos } => {
                    if live[id as usize] && !desynced[id as usize] {
                        let (x, y) = snap(pos.x, pos.y);
                        push(t, SimEvent::Move { id, x, y });
                    }
                }
                MotionEvent::Remove { id } => {
                    if live[id as usize]
                        && !desynced[id as usize]
                        && !is_anchored(id, &query_live, &query_anchor)
                    {
                        live[id as usize] = false;
                        push(t, SimEvent::Remove { id });
                    }
                }
                MotionEvent::Insert { id, pos, .. } => {
                    if !live[id as usize] && !desynced[id as usize] {
                        live[id as usize] = true;
                        let (x, y) = snap(pos.x, pos.y);
                        push(
                            t,
                            SimEvent::Insert {
                                id,
                                kind: kind_of(id),
                                x,
                                y,
                            },
                        );
                    }
                }
            }
        }

        // Query churn: occasionally retire one query and open another.
        if t > 1 && rng.gen_bool(0.04) {
            let alive: Vec<u32> = (0..query_live.len() as u32)
                .filter(|&q| query_live[q as usize])
                .collect();
            if alive.len() > 1 {
                let q = alive[rng.gen_range(0..alive.len())];
                query_live[q as usize] = false;
                push(t, SimEvent::RemoveQuery { q });
            }
        }
        if t > 1 && rng.gen_bool(0.06) {
            // Anchor on a live kind-A object so any algorithm is valid.
            let candidates: Vec<u32> = (0..n_a as u32)
                .filter(|&id| live[id as usize] && !desynced[id as usize])
                .collect();
            if !candidates.is_empty() {
                let anchor = candidates[rng.gen_range(0..candidates.len())];
                let q = query_live.len() as u32;
                let algo = ALGO_CYCLE[rng.gen_range(0..ALGO_CYCLE.len())];
                query_live.push(true);
                query_anchor.push(anchor);
                push(t, SimEvent::AddQuery { q, anchor, algo });
            }
        }

        if !cfg.faults {
            continue;
        }

        // Grid desync: a live, unanchored object's bucket state is
        // corrupted mid-tick. The object is gone for good (ghosts are
        // never revived — matching what the fault does to the store).
        // Durable plans skip it: the fault is injected below the ingest
        // path, so a WAL replay would resurrect the ghost as a healthy
        // object and legitimately diverge from the mirror.
        if !durable && rng.gen_bool(0.05) {
            let candidates: Vec<u32> = (0..n as u32)
                .filter(|&id| {
                    live[id as usize]
                        && !desynced[id as usize]
                        && !is_anchored(id, &query_live, &query_anchor)
                        && (!cfg.server || id != victim_anchor)
                })
                .collect();
            if !candidates.is_empty() {
                let id = candidates[rng.gen_range(0..candidates.len())];
                desynced[id as usize] = true;
                live[id as usize] = false;
                push(t, SimEvent::ForceDesync { id });
            }
        }
        if cfg.workers > 1 && rng.gen_bool(0.05) {
            let worker = rng.gen_range(0..cfg.workers) as u32;
            push(t, SimEvent::StallWorker { worker });
        }
        if cfg.server {
            if rng.gen_bool(0.10) {
                let fault = [
                    FrameFault::Drop,
                    FrameFault::Duplicate,
                    FrameFault::Truncate,
                    FrameFault::Reorder,
                ][rng.gen_range(0..4)];
                push(t, SimEvent::FrameFault { fault });
            }
            if rng.gen_bool(0.02) {
                push(t, SimEvent::ClientStall { ticks: 3 });
            }
        }

        // Scripted storms.
        if t == storm_delete {
            let victims: Vec<u32> = (0..n as u32)
                .filter(|&id| {
                    live[id as usize]
                        && !desynced[id as usize]
                        && !protected.contains(&id)
                        && !is_anchored(id, &query_live, &query_anchor)
                })
                .collect();
            for &id in victims.iter().take(victims.len() / 4) {
                live[id as usize] = false;
                push(t, SimEvent::Remove { id });
            }
        }
        if t == storm_reinsert {
            let dead: Vec<u32> = (0..n as u32)
                .filter(|&id| !live[id as usize] && !desynced[id as usize])
                .collect();
            for &id in &dead {
                live[id as usize] = true;
                let (x, y) = snap(
                    rng.gen_range(cfg.space.min.x..cfg.space.max.x),
                    rng.gen_range(cfg.space.min.y..cfg.space.max.y),
                );
                push(
                    t,
                    SimEvent::Insert {
                        id,
                        kind: kind_of(id),
                        x,
                        y,
                    },
                );
            }
        }
        if t == storm_teleport {
            let movers: Vec<u32> = (0..n as u32)
                .filter(|&id| live[id as usize] && !desynced[id as usize])
                .collect();
            for &id in movers.iter().take(movers.len() / 4) {
                let (x, y) = snap(
                    rng.gen_range(cfg.space.min.x..cfg.space.max.x),
                    rng.gen_range(cfg.space.min.y..cfg.space.max.y),
                );
                push(t, SimEvent::Move { id, x, y });
            }
        }
    }

    Plan {
        seed: cfg.seed,
        space: cfg.space,
        grid: cfg.grid,
        workers: cfg.workers,
        ticks: cfg.ticks,
        server: cfg.server,
        durable,
        batch: cfg.batch,
        network: cfg.network,
        victim_anchor: (cfg.server && cfg.faults).then_some(victim_anchor),
        initial,
        events,
    }
}

fn is_anchored(id: u32, query_live: &[bool], query_anchor: &[u32]) -> bool {
    query_anchor
        .iter()
        .zip(query_live)
        .any(|(&a, &alive)| alive && a == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GenConfig {
        GenConfig {
            seed: 3,
            ticks: 60,
            objects: 32,
            grid: 8,
            queries: 8,
            workers: 4,
            space: Aabb::from_coords(0.0, 0.0, 100.0, 100.0),
            faults: true,
            server: true,
            durable: false,
            batch: false,
            network: false,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(&cfg()), generate(&cfg()));
        assert_ne!(
            generate(&cfg()).events,
            generate(&GenConfig { seed: 4, ..cfg() }).events
        );
    }

    #[test]
    fn plan_covers_all_eight_algorithms_and_fault_kinds() {
        let plan = generate(&cfg());
        let mut algos = std::collections::BTreeSet::new();
        let (mut desync, mut stall, mut frame) = (false, false, false);
        for e in &plan.events {
            match &e.event {
                SimEvent::AddQuery { algo, .. } => {
                    algos.insert(format!("{algo:?}"));
                }
                SimEvent::ForceDesync { .. } => desync = true,
                SimEvent::StallWorker { .. } => stall = true,
                SimEvent::FrameFault { .. } => frame = true,
                _ => {}
            }
        }
        assert!(algos.len() >= 8, "only {algos:?}");
        assert!(desync && stall && frame, "{desync} {stall} {frame}");
        assert_eq!(plan.victim_anchor, Some(31));
    }

    #[test]
    fn durable_plans_swap_desync_for_kill_restart() {
        let plan = generate(&GenConfig {
            durable: true,
            ..cfg()
        });
        assert!(plan.durable);
        let kills = plan
            .events
            .iter()
            .filter(|e| e.event == SimEvent::KillRestart)
            .count();
        assert!(kills >= 1, "every durable seed schedules a crash");
        assert!(
            !plan
                .events
                .iter()
                .any(|e| matches!(e.event, SimEvent::ForceDesync { .. })),
            "durable plans never desync (replay would repair the ghost)"
        );
        // The kill always opens its tick, so every earlier mutation is
        // behind a tick-end barrier (and in the log) when it lands.
        let mut seen: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for e in &plan.events {
            if e.event == SimEvent::KillRestart {
                assert!(!seen.contains(&e.tick), "kill is first in tick {}", e.tick);
            }
            seen.insert(e.tick);
        }
        // Non-durable plans are unchanged by the new knob.
        assert!(!generate(&cfg())
            .events
            .iter()
            .any(|e| e.event == SimEvent::KillRestart));
    }

    #[test]
    fn events_are_tick_sorted_and_in_range() {
        let plan = generate(&cfg());
        let mut last = 0;
        for e in &plan.events {
            assert!(e.tick >= last && e.tick >= 1 && e.tick <= plan.ticks);
            last = e.tick;
        }
    }
}
