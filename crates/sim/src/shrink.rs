//! Schedule minimization by delta debugging.
//!
//! Given a failing plan, the shrinker first truncates the run right
//! after the failing tick, then removes event chunks of halving sizes
//! while the failure keeps reproducing (the complement-reduction half
//! of classic ddmin — the half that matters when events are mostly
//! independent), and finally re-truncates the tick horizon to the last
//! surviving event. Execution is deterministic, so "keeps reproducing"
//! is a plain re-run — no flake tolerance is needed.
//!
//! Invalid intermediate schedules are a non-issue by construction: the
//! executor's mirror turns any event orphaned by a deletion into a
//! no-op on every backend identically (see [`crate::oracle::Mirror`]).

use crate::events::Plan;
use crate::exec::SimFailure;

/// What the shrinker did, for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Events in the original failing plan.
    pub from_events: usize,
    /// Events in the minimized plan.
    pub to_events: usize,
    /// Ticks in the minimized plan.
    pub to_ticks: u64,
    /// How many candidate executions were spent.
    pub executions: u32,
}

/// Minimize `plan` while `check` keeps failing. `check` must be the
/// same execution the original failure came from (including any test
/// corruption seam). `budget` caps candidate executions; the best plan
/// found within budget is returned along with its failure.
pub fn minimize<F>(
    plan: &Plan,
    original: &SimFailure,
    budget: u32,
    mut check: F,
) -> (Plan, SimFailure, ShrinkStats)
where
    F: FnMut(&Plan) -> Result<crate::exec::SimReport, SimFailure>,
{
    let mut stats = ShrinkStats {
        from_events: plan.events.len(),
        to_events: plan.events.len(),
        to_ticks: plan.ticks,
        executions: 0,
    };
    let mut best = plan.clone();
    let mut best_failure = original.clone();

    // Phase 1: cut the run off right after the failing tick — every
    // event past it is irrelevant by causality.
    if original.tick < best.ticks {
        let mut candidate = best.clone();
        candidate.ticks = original.tick;
        candidate.events.retain(|e| e.tick <= original.tick);
        stats.executions += 1;
        if let Err(f) = check(&candidate) {
            best = candidate;
            best_failure = f;
        }
    }

    // Phase 2: complement reduction with halving chunk sizes.
    let mut chunk = best.events.len().div_ceil(2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < best.events.len() {
            if stats.executions >= budget {
                break;
            }
            let end = (i + chunk).min(best.events.len());
            let mut candidate = best.clone();
            candidate.events.drain(i..end);
            stats.executions += 1;
            if let Err(f) = check(&candidate) {
                best = candidate;
                best_failure = f;
                removed_any = true;
                // The window now holds fresh events; retry in place.
            } else {
                i = end;
            }
        }
        if stats.executions >= budget {
            break;
        }
        if chunk == 1 {
            if !removed_any {
                break;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }

    // Phase 3: the horizon only needs to reach the last surviving
    // event (or the failing tick, if later — a fault can take effect
    // ticks after its event, e.g. a stalled client overflowing later).
    let horizon = best
        .events
        .iter()
        .map(|e| e.tick)
        .max()
        .unwrap_or(1)
        .max(best_failure.tick);
    if horizon < best.ticks && stats.executions < budget {
        let mut candidate = best.clone();
        candidate.ticks = horizon;
        stats.executions += 1;
        if let Err(f) = check(&candidate) {
            best = candidate;
            best_failure = f;
        }
    }

    stats.to_events = best.events.len();
    stats.to_ticks = best.ticks;
    (best, best_failure, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{ScheduledEvent, SimEvent};
    use igern_geom::Aabb;

    fn toy_plan(n_events: usize) -> Plan {
        Plan {
            seed: 0,
            space: Aabb::from_coords(0.0, 0.0, 10.0, 10.0),
            grid: 4,
            workers: 2,
            ticks: 50,
            server: false,
            durable: false,
            batch: false,
            network: false,
            victim_anchor: None,
            initial: Vec::new(),
            events: (0..n_events)
                .map(|i| ScheduledEvent {
                    tick: (i as u64 % 50) + 1,
                    event: SimEvent::Remove { id: i as u32 },
                })
                .collect(),
        }
    }

    /// A synthetic failure predicate: fails iff events with ids 7 and
    /// 23 are both present, reporting the larger tick of the two.
    fn fails(plan: &Plan) -> Result<crate::exec::SimReport, SimFailure> {
        let mut tick = None;
        let both = [7u32, 23].iter().all(|&want| {
            plan.events.iter().any(|e| {
                if matches!(e.event, SimEvent::Remove { id } if id == want) {
                    tick = Some(tick.unwrap_or(0).max(e.tick));
                    true
                } else {
                    false
                }
            })
        });
        if both {
            Err(SimFailure {
                tick: tick.unwrap(),
                query: None,
                kind: "mismatch",
                detail: "synthetic".into(),
            })
        } else {
            Ok(crate::exec::SimReport {
                ticks: plan.ticks,
                digest: 0,
                counters: Default::default(),
                victim_alive: None,
            })
        }
    }

    #[test]
    fn minimizes_to_the_two_culprits() {
        let plan = toy_plan(200);
        let original = fails(&plan).unwrap_err();
        let (min, failure, stats) = minimize(&plan, &original, 10_000, fails);
        assert_eq!(min.events.len(), 2, "{:?}", min.events);
        assert_eq!(stats.to_events, 2);
        assert!(stats.executions > 0);
        assert_eq!(failure.kind, "mismatch");
        // The horizon collapsed to the surviving events.
        assert!(min.ticks <= 24, "ticks {}", min.ticks);
        assert!(fails(&min).is_err(), "minimized plan must still fail");
    }

    #[test]
    fn budget_is_respected() {
        let plan = toy_plan(200);
        let original = fails(&plan).unwrap_err();
        let (min, _, stats) = minimize(&plan, &original, 3, fails);
        assert!(stats.executions <= 3);
        assert!(fails(&min).is_err());
    }
}
