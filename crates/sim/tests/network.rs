//! Network-distance simulation runs (ISSUE 10): the whole lockstep
//! harness — serial processor, sharded engine, and the served wire
//! protocol — checked tick-by-tick against the Dijkstra oracles while
//! the fault plan fires. Everything the Euclidean tier guarantees must
//! hold verbatim with `network: true`: bit-determinism, replay-file
//! round-trips, and exact crash recovery of network subscriptions.

use igern_core::NetworkSpace;
use igern_geom::Point;
use igern_sim::events::sim_network;
use igern_sim::{execute, load_replay, run, write_replay, SimConfig, SimEvent};

fn net_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ticks: 30,
        objects: 24,
        queries: 8,
        workers: 3,
        network: true,
        ..SimConfig::default()
    }
}

/// The tentpole check: all three backends agree with the brute-force
/// network oracles on every tick of a faulted run, and the run is
/// bit-deterministic.
#[test]
fn network_run_matches_dijkstra_oracles_deterministically() {
    let cfg = net_cfg(7);
    let a = run(&cfg).expect("network sim must pass on a healthy build");
    assert!(
        a.counters.answer_checks > 0,
        "run must actually check answers"
    );
    let b = run(&cfg).expect("second run");
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.counters, b.counters);
}

/// Plan generation snaps every initial position onto the road graph —
/// objects live on edges, not in open space.
#[test]
fn network_plans_place_objects_on_the_road_graph() {
    let cfg = net_cfg(3);
    let plan = cfg.plan();
    assert!(plan.network);
    let ns = NetworkSpace::from_network(&sim_network(plan.seed, plan.space));
    for &(id, _, x, y) in &plan.initial {
        let p = Point::new(x, y);
        let snapped = ns.snap(p).point;
        assert!(
            p.dist(snapped) < 1e-9,
            "object {id} at {p:?} is off-network (nearest edge point {snapped:?})"
        );
    }
    // Moves and inserts are snapped too.
    for e in &plan.events {
        let (x, y) = match e.event {
            SimEvent::Move { x, y, .. } | SimEvent::Insert { x, y, .. } => (x, y),
            _ => continue,
        };
        let p = Point::new(x, y);
        assert!(
            p.dist(ns.snap(p).point) < 1e-9,
            "event position off-network"
        );
    }
}

/// `.simreplay` files carry the network flag, and a loaded plan
/// re-executes to the exact digest of the original run.
#[test]
fn network_replay_files_reproduce_the_run() {
    let cfg = net_cfg(11);
    let plan = cfg.plan();
    let original = execute(&plan, None).expect("network sim");
    let text = write_replay(&plan);
    assert!(text.contains("\"network\": true"));
    let reloaded = load_replay(&text).expect("own writer output");
    assert_eq!(reloaded, plan);
    let replayed = execute(&reloaded, None).expect("replayed network sim");
    assert_eq!(replayed.digest, original.digest);
}

/// Crash recovery on a durable network plan: the restarted server
/// re-registers its network-mode subscriptions from the WAL (the fresh
/// store re-attaches the road graph) and answers stay exact from the
/// first post-restart tick.
#[test]
fn durable_network_run_survives_kill_restarts() {
    let cfg = SimConfig {
        durable: true,
        ..net_cfg(5)
    };
    let plan = cfg.plan();
    assert!(
        plan.events.iter().any(|e| e.event == SimEvent::KillRestart),
        "durable plan must schedule at least one crash"
    );
    let a = execute(&plan, None).expect("durable network sim");
    assert!(a.counters.kill_restarts > 0, "crash must actually fire");
    let b = execute(&plan, None).expect("second run");
    assert_eq!(a.digest, b.digest);
}

/// The batch evaluation path is answer-invisible under network
/// distance too: same seed, batch on vs off, identical digests.
#[test]
fn batch_evaluation_is_answer_invisible_under_network_distance() {
    let base = SimConfig {
        ticks: 20,
        ..net_cfg(9)
    };
    let a = run(&base).expect("network sim");
    let batched = SimConfig {
        batch: true,
        ..base
    };
    let b = run(&batched).expect("batched network sim");
    assert_eq!(a.digest, b.digest, "batch path changed network answers");
}
