//! End-to-end durable simulation: the served backend runs over a
//! write-ahead log and is crash-killed and restarted mid-run by
//! scheduled `KillRestart` faults. Every post-restart answer is still
//! checked against the brute-force mirror, so these tests fail on any
//! recovery inexactness — a lost mutation, a dropped query, a stale
//! answer snapshot.

use igern_sim::{execute, load_replay, run, write_replay, SimConfig, SimEvent};

fn durable_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ticks: 60,
        objects: 24,
        queries: 6,
        workers: 2,
        durable: true,
        ..SimConfig::default()
    }
}

#[test]
fn durable_run_survives_kill_restarts_bit_identically() {
    let cfg = durable_cfg(5);
    let first = run(&cfg).expect("durable run passes the oracle");
    assert!(
        first.counters.kill_restarts >= 1,
        "every durable seed schedules at least one crash"
    );
    assert_eq!(
        first.counters.desyncs, 0,
        "durable plans never desync (replay would repair the ghost)"
    );
    // Bit-determinism holds across executions even though each one
    // uses a fresh WAL directory and real server restarts.
    let second = run(&cfg).expect("determinism re-run");
    assert_eq!(first.digest, second.digest);
    assert_eq!(first.counters, second.counters);
}

#[test]
fn durable_plans_replay_from_files_exactly() {
    let cfg = durable_cfg(9);
    let plan = cfg.plan();
    assert!(plan.durable);
    assert!(plan.events.iter().any(|e| e.event == SimEvent::KillRestart));

    let direct = execute(&plan, None).expect("direct execution passes");
    let reloaded = load_replay(&write_replay(&plan)).expect("round-trip");
    let replayed = execute(&reloaded, None).expect("replayed execution passes");
    assert_eq!(direct.digest, replayed.digest);
    assert_eq!(direct.counters, replayed.counters);
    assert!(replayed.counters.kill_restarts >= 1);
}

#[test]
fn kill_restart_is_skipped_without_a_durable_server() {
    // Hand-patch a non-durable plan with a kill: the mirror refuses it
    // (there is no log to come back from) and the run still passes.
    let mut plan = SimConfig {
        ticks: 10,
        objects: 12,
        queries: 3,
        workers: 2,
        durable: false,
        ..SimConfig::default()
    }
    .plan();
    plan.events.push(igern_sim::ScheduledEvent {
        tick: 4,
        event: SimEvent::KillRestart,
    });
    plan.events.sort_by_key(|e| e.tick);
    let report = execute(&plan, None).expect("kill on a non-durable plan is inert");
    assert_eq!(report.counters.kill_restarts, 0);
    assert!(report.counters.events_skipped >= 1);
}
