//! The IGERN wire protocol: length-prefixed binary frames.
//!
//! Every frame is `[u32 len][u8 type][body]`, all integers and floats
//! little-endian; `len` counts the type byte plus the body, and is
//! capped at [`MAX_FRAME_LEN`] so a hostile length prefix cannot make
//! the server allocate unbounded memory. The frame set (DESIGN.md §12
//! has the full table):
//!
//! * client → server: `HELLO`, `UPSERT_OBJECT`, `REMOVE_OBJECT`,
//!   `SUBSCRIBE_QUERY`, `UNSUBSCRIBE`, `PING`, `STEP`, `SHUTDOWN`
//! * server → client: `HELLO_ACK`, `SUBSCRIBED`, `UNSUBSCRIBED`,
//!   `TICK_DELTA`, `TICK_END`, `PONG`, `ERROR`
//!
//! Decoding is strict: unknown frame types, truncated bodies, trailing
//! bytes, bad enum discriminants, and oversized lengths are all
//! [`ProtoError`]s — the server answers them with an `ERROR` frame and
//! closes the offending connection, never a panic.

use std::io::{self, Read};

use igern_core::processor::Algorithm;
use igern_core::types::{DistanceMode, ObjectKind};

/// Protocol version spoken by this build. Version 2 added the optional
/// distance-mode byte on `SUBSCRIBE_QUERY`; servers accept any version
/// in [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] (see
/// [`version_accepted`]) because a v1 client's frames are a strict
/// subset of v2.
pub const PROTOCOL_VERSION: u16 = 2;

/// Oldest client protocol version still accepted in `HELLO`.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// Whether a client `HELLO` version is one this build speaks.
pub fn version_accepted(v: u16) -> bool {
    (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&v)
}

/// Upper bound on `len` (type byte + body). Frames claiming more are
/// rejected before any allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A decoding (or framing) error. These are protocol violations by the
/// peer, distinct from transport-level [`io::Error`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The body ended before the frame's fields did.
    Truncated,
    /// Bytes were left over after the last field.
    TrailingBytes(usize),
    /// Unknown frame type byte.
    UnknownType(u8),
    /// A field held an invalid enum discriminant (`field`, `value`).
    BadEnum(&'static str, u8),
    /// The length prefix exceeded [`MAX_FRAME_LEN`] (or was zero).
    BadLength(u32),
    /// An `ERROR` frame's message was not UTF-8.
    BadUtf8,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "frame body truncated"),
            ProtoError::TrailingBytes(n) => write!(f, "{n} trailing bytes after frame"),
            ProtoError::UnknownType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::BadEnum(field, v) => write!(f, "bad {field} discriminant {v}"),
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadUtf8 => write!(f, "error message is not utf-8"),
        }
    }
}

impl std::error::Error for ProtoError {}

/// Error codes carried by `ERROR` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// `HELLO` version differed from [`PROTOCOL_VERSION`].
    VersionMismatch = 1,
    /// The frame could not be decoded; the connection is closed.
    Malformed = 2,
    /// The first frame was not `HELLO`; the connection is closed.
    ExpectedHello = 3,
    /// An operation referenced an object id not in the store.
    UnknownObject = 4,
    /// A bichromatic subscription anchored at a non-A object.
    NotKindA = 5,
    /// A k-variant subscription with `k == 0`.
    ZeroK = 6,
    /// `UNSUBSCRIBE` for a subscription this connection does not own.
    UnknownSubscription = 7,
    /// `REMOVE_OBJECT` for an object anchoring a live subscription.
    AnchorInUse = 8,
    /// `UPSERT_OBJECT` tried to change an existing object's kind.
    KindMismatch = 9,
    /// `UPSERT_OBJECT` position outside the server's data space.
    OutOfBounds = 10,
    /// A network-distance subscription on a server with no road network.
    NoNetwork = 11,
}

impl ErrorCode {
    fn from_wire(v: u8) -> Result<Self, ProtoError> {
        Ok(match v {
            1 => ErrorCode::VersionMismatch,
            2 => ErrorCode::Malformed,
            3 => ErrorCode::ExpectedHello,
            4 => ErrorCode::UnknownObject,
            5 => ErrorCode::NotKindA,
            6 => ErrorCode::ZeroK,
            7 => ErrorCode::UnknownSubscription,
            8 => ErrorCode::AnchorInUse,
            9 => ErrorCode::KindMismatch,
            10 => ErrorCode::OutOfBounds,
            11 => ErrorCode::NoNetwork,
            other => return Err(ProtoError::BadEnum("error code", other)),
        })
    }
}

/// One protocol frame, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Handshake: must be the first client frame.
    Hello { version: u16 },
    /// Insert a new object or move an existing one (kind must match).
    UpsertObject {
        id: u32,
        kind: ObjectKind,
        x: f64,
        y: f64,
    },
    /// Remove an object from the store.
    RemoveObject { id: u32 },
    /// Register a continuous query anchored at `anchor`. `token` is a
    /// client-chosen correlation id echoed in `SUBSCRIBED`. The
    /// distance-mode byte is a v2 extension: it is encoded only when
    /// `mode` is [`DistanceMode::Network`], so Euclidean subscriptions
    /// stay byte-identical to protocol v1 and v1 decoders keep working.
    Subscribe {
        token: u32,
        anchor: u32,
        algo: Algorithm,
        mode: DistanceMode,
    },
    /// Drop subscription `sid`.
    Unsubscribe { sid: u32 },
    /// Liveness probe, answered inline with `PONG`.
    Ping { nonce: u64 },
    /// Force a tick now (the only tick trigger when `--tick-ms 0`).
    Step,
    /// Ask the server to drain in-flight work and exit.
    Shutdown,
    /// Handshake reply.
    HelloAck { version: u16 },
    /// Subscription accepted; `sid` names it from now on.
    Subscribed { token: u32, sid: u32 },
    /// Subscription dropped.
    Unsubscribed { sid: u32 },
    /// Answer change for subscription `sid` at `tick`. With `snapshot`
    /// set, `adds` is the complete answer and the previous client-side
    /// state must be discarded (first push after subscribe, and after a
    /// slow-consumer coalesce). `stamp_nanos` is the server's wall
    /// clock (epoch nanos) when the tick's push began.
    TickDelta {
        tick: u64,
        stamp_nanos: u64,
        sid: u32,
        snapshot: bool,
        adds: Vec<u32>,
        removes: Vec<u32>,
    },
    /// End-of-tick marker, sent to every connection holding at least
    /// one subscription — the client-side sync point.
    TickEnd { tick: u64, stamp_nanos: u64 },
    /// `PING` reply.
    Pong { nonce: u64 },
    /// A rejected operation or protocol violation.
    Error { code: ErrorCode, message: String },
}

const T_HELLO: u8 = 1;
const T_UPSERT: u8 = 2;
const T_REMOVE: u8 = 3;
const T_SUBSCRIBE: u8 = 4;
const T_UNSUBSCRIBE: u8 = 5;
const T_PING: u8 = 6;
const T_STEP: u8 = 7;
const T_SHUTDOWN: u8 = 8;
const T_HELLO_ACK: u8 = 16;
const T_SUBSCRIBED: u8 = 17;
const T_UNSUBSCRIBED: u8 = 18;
const T_TICK_DELTA: u8 = 19;
const T_TICK_END: u8 = 20;
const T_PONG: u8 = 21;
const T_ERROR: u8 = 22;

/// Wire encoding of an [`Algorithm`]: `(code, k)`. Public because the
/// WAL snapshot codec stores standing queries in the same encoding.
pub fn algo_to_wire(algo: Algorithm) -> (u8, u16) {
    match algo {
        Algorithm::IgernMono => (0, 0),
        Algorithm::Crnn => (1, 0),
        Algorithm::TplRepeat => (2, 0),
        Algorithm::IgernBi => (3, 0),
        Algorithm::VoronoiRepeat => (4, 0),
        Algorithm::IgernMonoK(k) => (5, k as u16),
        Algorithm::IgernBiK(k) => (6, k as u16),
        Algorithm::Knn(k) => (7, k as u16),
    }
}

/// Wire encoding of a [`DistanceMode`]. Public because the WAL snapshot
/// codec stores standing queries in the same encoding.
pub fn mode_to_wire(mode: DistanceMode) -> u8 {
    match mode {
        DistanceMode::Euclidean => 0,
        DistanceMode::Network => 1,
    }
}

/// Inverse of [`mode_to_wire`].
pub fn mode_from_wire(v: u8) -> Result<DistanceMode, ProtoError> {
    Ok(match v {
        0 => DistanceMode::Euclidean,
        1 => DistanceMode::Network,
        other => return Err(ProtoError::BadEnum("distance mode", other)),
    })
}

/// Inverse of [`algo_to_wire`].
pub fn algo_from_wire(code: u8, k: u16) -> Result<Algorithm, ProtoError> {
    Ok(match code {
        0 => Algorithm::IgernMono,
        1 => Algorithm::Crnn,
        2 => Algorithm::TplRepeat,
        3 => Algorithm::IgernBi,
        4 => Algorithm::VoronoiRepeat,
        5 => Algorithm::IgernMonoK(k as usize),
        6 => Algorithm::IgernBiK(k as usize),
        7 => Algorithm::Knn(k as usize),
        other => return Err(ProtoError::BadEnum("algorithm", other)),
    })
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(ProtoError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ProtoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// `u32` count followed by that many `u32` ids.
    fn id_list(&mut self) -> Result<Vec<u32>, ProtoError> {
        let n = self.u32()? as usize;
        // The count is bounded by what the length prefix admitted.
        if self.buf.len() - self.pos < n * 4 {
            return Err(ProtoError::Truncated);
        }
        (0..n).map(|_| self.u32()).collect()
    }
}

impl Frame {
    /// Whether the frame is per-tick push traffic — the only frames a
    /// slow-consumer coalesce may drop.
    pub fn is_tick_traffic(&self) -> bool {
        matches!(self, Frame::TickDelta { .. } | Frame::TickEnd { .. })
    }

    /// Short name of the frame type (metrics label).
    pub fn type_name(&self) -> &'static str {
        type_name_of(self.type_byte())
    }

    fn type_byte(&self) -> u8 {
        match self {
            Frame::Hello { .. } => T_HELLO,
            Frame::UpsertObject { .. } => T_UPSERT,
            Frame::RemoveObject { .. } => T_REMOVE,
            Frame::Subscribe { .. } => T_SUBSCRIBE,
            Frame::Unsubscribe { .. } => T_UNSUBSCRIBE,
            Frame::Ping { .. } => T_PING,
            Frame::Step => T_STEP,
            Frame::Shutdown => T_SHUTDOWN,
            Frame::HelloAck { .. } => T_HELLO_ACK,
            Frame::Subscribed { .. } => T_SUBSCRIBED,
            Frame::Unsubscribed { .. } => T_UNSUBSCRIBED,
            Frame::TickDelta { .. } => T_TICK_DELTA,
            Frame::TickEnd { .. } => T_TICK_END,
            Frame::Pong { .. } => T_PONG,
            Frame::Error { .. } => T_ERROR,
        }
    }

    /// Encode as a complete `[len][type][body]` wire frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        body.push(self.type_byte());
        match self {
            Frame::Hello { version } | Frame::HelloAck { version } => {
                body.extend_from_slice(&version.to_le_bytes());
            }
            Frame::UpsertObject { id, kind, x, y } => {
                body.extend_from_slice(&id.to_le_bytes());
                body.push(match kind {
                    ObjectKind::A => 0,
                    ObjectKind::B => 1,
                });
                body.extend_from_slice(&x.to_le_bytes());
                body.extend_from_slice(&y.to_le_bytes());
            }
            Frame::RemoveObject { id } => body.extend_from_slice(&id.to_le_bytes()),
            Frame::Subscribe {
                token,
                anchor,
                algo,
                mode,
            } => {
                let (code, k) = algo_to_wire(*algo);
                body.extend_from_slice(&token.to_le_bytes());
                body.extend_from_slice(&anchor.to_le_bytes());
                body.push(code);
                body.extend_from_slice(&k.to_le_bytes());
                // v2 extension byte, omitted for Euclidean so the frame
                // stays byte-identical to protocol v1.
                if *mode != DistanceMode::Euclidean {
                    body.push(mode_to_wire(*mode));
                }
            }
            Frame::Unsubscribe { sid } | Frame::Unsubscribed { sid } => {
                body.extend_from_slice(&sid.to_le_bytes());
            }
            Frame::Ping { nonce } | Frame::Pong { nonce } => {
                body.extend_from_slice(&nonce.to_le_bytes());
            }
            Frame::Step | Frame::Shutdown => {}
            Frame::Subscribed { token, sid } => {
                body.extend_from_slice(&token.to_le_bytes());
                body.extend_from_slice(&sid.to_le_bytes());
            }
            Frame::TickDelta {
                tick,
                stamp_nanos,
                sid,
                snapshot,
                adds,
                removes,
            } => {
                body.extend_from_slice(&tick.to_le_bytes());
                body.extend_from_slice(&stamp_nanos.to_le_bytes());
                body.extend_from_slice(&sid.to_le_bytes());
                body.push(u8::from(*snapshot));
                for list in [adds, removes] {
                    body.extend_from_slice(&(list.len() as u32).to_le_bytes());
                    for id in list {
                        body.extend_from_slice(&id.to_le_bytes());
                    }
                }
            }
            Frame::TickEnd { tick, stamp_nanos } => {
                body.extend_from_slice(&tick.to_le_bytes());
                body.extend_from_slice(&stamp_nanos.to_le_bytes());
            }
            Frame::Error { code, message } => {
                body.push(*code as u8);
                let msg = &message.as_bytes()[..message.len().min(u16::MAX as usize)];
                body.extend_from_slice(&(msg.len() as u16).to_le_bytes());
                body.extend_from_slice(msg);
            }
        }
        debug_assert!(body.len() <= MAX_FRAME_LEN, "frame exceeds MAX_FRAME_LEN");
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode the `[type][body]` payload of one frame (the part the
    /// length prefix counts). Strict: every byte must be consumed.
    pub fn decode(payload: &[u8]) -> Result<Frame, ProtoError> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let ty = c.u8()?;
        let frame = match ty {
            T_HELLO => Frame::Hello { version: c.u16()? },
            T_HELLO_ACK => Frame::HelloAck { version: c.u16()? },
            T_UPSERT => Frame::UpsertObject {
                id: c.u32()?,
                kind: match c.u8()? {
                    0 => ObjectKind::A,
                    1 => ObjectKind::B,
                    other => return Err(ProtoError::BadEnum("object kind", other)),
                },
                x: c.f64()?,
                y: c.f64()?,
            },
            T_REMOVE => Frame::RemoveObject { id: c.u32()? },
            T_SUBSCRIBE => {
                let token = c.u32()?;
                let anchor = c.u32()?;
                let code = c.u8()?;
                let k = c.u16()?;
                // Optional v2 trailing byte; absent means Euclidean.
                let mode = if c.pos < payload.len() {
                    mode_from_wire(c.u8()?)?
                } else {
                    DistanceMode::Euclidean
                };
                Frame::Subscribe {
                    token,
                    anchor,
                    algo: algo_from_wire(code, k)?,
                    mode,
                }
            }
            T_UNSUBSCRIBE => Frame::Unsubscribe { sid: c.u32()? },
            T_UNSUBSCRIBED => Frame::Unsubscribed { sid: c.u32()? },
            T_PING => Frame::Ping { nonce: c.u64()? },
            T_PONG => Frame::Pong { nonce: c.u64()? },
            T_STEP => Frame::Step,
            T_SHUTDOWN => Frame::Shutdown,
            T_SUBSCRIBED => Frame::Subscribed {
                token: c.u32()?,
                sid: c.u32()?,
            },
            T_TICK_DELTA => Frame::TickDelta {
                tick: c.u64()?,
                stamp_nanos: c.u64()?,
                sid: c.u32()?,
                snapshot: match c.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(ProtoError::BadEnum("snapshot flag", other)),
                },
                adds: c.id_list()?,
                removes: c.id_list()?,
            },
            T_TICK_END => Frame::TickEnd {
                tick: c.u64()?,
                stamp_nanos: c.u64()?,
            },
            T_ERROR => {
                let code = ErrorCode::from_wire(c.u8()?)?;
                let len = c.u16()? as usize;
                let bytes = c.take(len)?;
                Frame::Error {
                    code,
                    message: std::str::from_utf8(bytes)
                        .map_err(|_| ProtoError::BadUtf8)?
                        .to_string(),
                }
            }
            other => return Err(ProtoError::UnknownType(other)),
        };
        if c.pos != payload.len() {
            return Err(ProtoError::TrailingBytes(payload.len() - c.pos));
        }
        Ok(frame)
    }
}

/// Whether `t` is a frame type this build decodes. Unknown types inside
/// a valid envelope are skipped by [`FrameReader::poll`] for forward
/// compatibility.
fn is_known_type(t: u8) -> bool {
    matches!(t, T_HELLO..=T_SHUTDOWN | T_HELLO_ACK..=T_ERROR)
}

fn type_name_of(t: u8) -> &'static str {
    match t {
        T_HELLO => "hello",
        T_UPSERT => "upsert_object",
        T_REMOVE => "remove_object",
        T_SUBSCRIBE => "subscribe",
        T_UNSUBSCRIBE => "unsubscribe",
        T_PING => "ping",
        T_STEP => "step",
        T_SHUTDOWN => "shutdown",
        T_HELLO_ACK => "hello_ack",
        T_SUBSCRIBED => "subscribed",
        T_UNSUBSCRIBED => "unsubscribed",
        T_TICK_DELTA => "tick_delta",
        T_TICK_END => "tick_end",
        T_PONG => "pong",
        T_ERROR => "error",
        _ => "unknown",
    }
}

/// Every frame type name, for eager metrics registration.
pub const FRAME_TYPE_NAMES: [&str; 15] = [
    "hello",
    "upsert_object",
    "remove_object",
    "subscribe",
    "unsubscribe",
    "ping",
    "step",
    "shutdown",
    "hello_ack",
    "subscribed",
    "unsubscribed",
    "tick_delta",
    "tick_end",
    "pong",
    "error",
];

/// Outcome of one [`FrameReader::poll`].
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete frame arrived and decoded.
    Frame(Frame),
    /// The read timed out mid-stream; state is preserved — poll again.
    Idle,
    /// The peer closed the stream at a frame boundary.
    Eof,
    /// A well-framed payload of an unknown frame type was skipped
    /// (forward compatibility: a newer peer may emit frame types this
    /// build does not know; the length prefix delimits them, so they
    /// are consumed without desyncing the stream). Carries the unknown
    /// type byte.
    Skipped(u8),
}

/// A transport or protocol failure while reading frames.
#[derive(Debug)]
pub enum FrameError {
    /// Transport failure (including EOF mid-frame).
    Io(io::Error),
    /// The peer violated the protocol; the stream is out of sync.
    Proto(ProtoError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Proto(e) => write!(f, "protocol: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Resumable frame reader over any [`Read`].
///
/// Designed for sockets with a read timeout: a timeout mid-frame
/// surfaces as [`ReadOutcome::Idle`] with all partial state preserved,
/// so the caller can check shutdown flags between polls without ever
/// losing stream sync.
pub struct FrameReader<R> {
    inner: R,
    /// Accumulates the 4 length bytes, then the payload.
    buf: Vec<u8>,
    /// Payload length once the prefix is complete.
    payload_len: Option<usize>,
}

impl<R: Read> FrameReader<R> {
    pub fn new(inner: R) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            payload_len: None,
        }
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Advance the stream by at most one frame.
    pub fn poll(&mut self) -> Result<ReadOutcome, FrameError> {
        loop {
            let want = match self.payload_len {
                None => 4,
                Some(n) => 4 + n,
            };
            while self.buf.len() < want {
                let mut chunk = [0u8; 4096];
                let free = (want - self.buf.len()).min(chunk.len());
                match self.inner.read(&mut chunk[..free]) {
                    Ok(0) => {
                        return if self.buf.is_empty() {
                            Ok(ReadOutcome::Eof)
                        } else {
                            Err(FrameError::Io(io::ErrorKind::UnexpectedEof.into()))
                        };
                    }
                    Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                    Err(e)
                        if e.kind() == io::ErrorKind::WouldBlock
                            || e.kind() == io::ErrorKind::TimedOut =>
                    {
                        return Ok(ReadOutcome::Idle);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(FrameError::Io(e)),
                }
            }
            if self.payload_len.is_none() {
                let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
                if len == 0 || len as usize > MAX_FRAME_LEN {
                    return Err(FrameError::Proto(ProtoError::BadLength(len)));
                }
                self.payload_len = Some(len as usize);
                continue;
            }
            // Forward compatibility: an unknown type byte in a
            // well-formed envelope is skipped, not a protocol error —
            // the prefix told us exactly how much to consume. Known
            // types still decode strictly (any other malformation kills
            // the connection).
            let ty = self.buf[4];
            if !is_known_type(ty) {
                self.buf.clear();
                self.payload_len = None;
                return Ok(ReadOutcome::Skipped(ty));
            }
            let frame = Frame::decode(&self.buf[4..]).map_err(FrameError::Proto)?;
            self.buf.clear();
            self.payload_len = None;
            return Ok(ReadOutcome::Frame(frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_mobgen::rng::Rng64;

    fn roundtrip(f: &Frame) {
        let wire = f.encode();
        let len = u32::from_le_bytes(wire[..4].try_into().unwrap()) as usize;
        assert_eq!(len, wire.len() - 4, "length prefix covers the payload");
        assert_eq!(&Frame::decode(&wire[4..]).unwrap(), f);
    }

    fn random_ids(rng: &mut Rng64, max: usize) -> Vec<u32> {
        (0..rng.gen_range(0..max + 1))
            .map(|_| rng.next_u64() as u32)
            .collect()
    }

    fn random_frame(rng: &mut Rng64) -> Frame {
        match rng.gen_range(0..15) {
            0 => Frame::Hello {
                version: rng.next_u64() as u16,
            },
            1 => Frame::UpsertObject {
                id: rng.next_u64() as u32,
                kind: if rng.gen_bool(0.5) {
                    ObjectKind::A
                } else {
                    ObjectKind::B
                },
                x: rng.f64() * 1e3 - 500.0,
                y: rng.f64() * 1e3 - 500.0,
            },
            2 => Frame::RemoveObject {
                id: rng.next_u64() as u32,
            },
            3 => Frame::Subscribe {
                token: rng.next_u64() as u32,
                anchor: rng.next_u64() as u32,
                algo: match rng.gen_range(0..8) {
                    0 => Algorithm::IgernMono,
                    1 => Algorithm::Crnn,
                    2 => Algorithm::TplRepeat,
                    3 => Algorithm::IgernBi,
                    4 => Algorithm::VoronoiRepeat,
                    5 => Algorithm::IgernMonoK(rng.gen_range(1..100)),
                    6 => Algorithm::IgernBiK(rng.gen_range(1..100)),
                    _ => Algorithm::Knn(rng.gen_range(1..100)),
                },
                mode: if rng.gen_bool(0.5) {
                    DistanceMode::Euclidean
                } else {
                    DistanceMode::Network
                },
            },
            4 => Frame::Unsubscribe {
                sid: rng.next_u64() as u32,
            },
            5 => Frame::Ping {
                nonce: rng.next_u64(),
            },
            6 => Frame::Step,
            7 => Frame::Shutdown,
            8 => Frame::HelloAck {
                version: rng.next_u64() as u16,
            },
            9 => Frame::Subscribed {
                token: rng.next_u64() as u32,
                sid: rng.next_u64() as u32,
            },
            10 => Frame::Unsubscribed {
                sid: rng.next_u64() as u32,
            },
            11 => Frame::TickDelta {
                tick: rng.next_u64(),
                stamp_nanos: rng.next_u64(),
                sid: rng.next_u64() as u32,
                snapshot: rng.gen_bool(0.5),
                adds: random_ids(rng, 40),
                removes: random_ids(rng, 40),
            },
            12 => Frame::TickEnd {
                tick: rng.next_u64(),
                stamp_nanos: rng.next_u64(),
            },
            13 => Frame::Pong {
                nonce: rng.next_u64(),
            },
            _ => Frame::Error {
                code: ErrorCode::from_wire(rng.gen_range(1..12) as u8).unwrap(),
                message: "x".repeat(rng.gen_range(0..64)),
            },
        }
    }

    #[test]
    fn fuzz_roundtrip_every_frame_type() {
        let mut rng = Rng64::seed_from_u64(0x5e4f);
        let mut seen = [false; 15];
        for _ in 0..2000 {
            let f = random_frame(&mut rng);
            seen[f.type_byte() as usize % 16 % 15] = true;
            roundtrip(&f);
        }
        // NaN positions survive the trip bit-for-bit too.
        let wire = Frame::UpsertObject {
            id: 1,
            kind: ObjectKind::A,
            x: f64::NAN,
            y: -0.0,
        }
        .encode();
        match Frame::decode(&wire[4..]).unwrap() {
            Frame::UpsertObject { x, y, .. } => {
                assert!(x.is_nan());
                assert_eq!(y.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong frame {other:?}"),
        }
    }

    #[test]
    fn fuzz_truncated_frames_are_rejected_not_panics() {
        let mut rng = Rng64::seed_from_u64(0xdead);
        for _ in 0..500 {
            let f = random_frame(&mut rng);
            let wire = f.encode();
            let payload = &wire[4..];
            let cut = rng.gen_range(0..payload.len());
            // Any strict prefix must fail to decode (never panic). One
            // deliberate exception: a network-mode SUBSCRIBE minus its
            // trailing mode byte IS a valid v1 Euclidean SUBSCRIBE —
            // that is the v1 compatibility contract, not a bug.
            match Frame::decode(&payload[..cut]) {
                Err(_) => {}
                Ok(decoded) => {
                    let Frame::Subscribe {
                        token,
                        anchor,
                        algo,
                        mode: DistanceMode::Network,
                    } = &f
                    else {
                        panic!("truncated {f:?} at {cut} decoded");
                    };
                    assert_eq!(cut, payload.len() - 1);
                    assert_eq!(
                        decoded,
                        Frame::Subscribe {
                            token: *token,
                            anchor: *anchor,
                            algo: *algo,
                            mode: DistanceMode::Euclidean,
                        }
                    );
                }
            }
            // Appended garbage is rejected. For SUBSCRIBE the garbage
            // byte lands where the optional v2 mode byte goes, so it
            // surfaces as a bad discriminant instead of trailing bytes.
            let mut extended = payload.to_vec();
            extended.push(0x7f);
            let expect = if matches!(
                f,
                Frame::Subscribe {
                    mode: DistanceMode::Euclidean,
                    ..
                }
            ) {
                ProtoError::BadEnum("distance mode", 0x7f)
            } else {
                ProtoError::TrailingBytes(1)
            };
            assert_eq!(Frame::decode(&extended), Err(expect), "{f:?}");
        }
    }

    #[test]
    fn euclidean_subscribe_is_byte_identical_to_protocol_v1() {
        // v1 layout: [len][type][token u32][anchor u32][code u8][k u16]
        let f = Frame::Subscribe {
            token: 7,
            anchor: 42,
            algo: Algorithm::IgernMonoK(3),
            mode: DistanceMode::Euclidean,
        };
        let wire = f.encode();
        assert_eq!(wire.len(), 4 + 1 + 4 + 4 + 1 + 2, "no v2 mode byte");
        // A v1 decoder (no mode byte expected) reads the same frame.
        assert_eq!(Frame::decode(&wire[4..]).unwrap(), f);
        // Network mode appends exactly one byte and round-trips.
        let n = Frame::Subscribe {
            token: 7,
            anchor: 42,
            algo: Algorithm::IgernMonoK(3),
            mode: DistanceMode::Network,
        };
        let nwire = n.encode();
        assert_eq!(nwire.len(), wire.len() + 1);
        assert_eq!(Frame::decode(&nwire[4..]).unwrap(), n);
        // A bad mode discriminant is rejected, not defaulted.
        let mut bad = nwire[4..].to_vec();
        *bad.last_mut().unwrap() = 9;
        assert_eq!(
            Frame::decode(&bad),
            Err(ProtoError::BadEnum("distance mode", 9))
        );
        // Both in-window versions are accepted, others rejected.
        assert!(version_accepted(1) && version_accepted(2));
        assert!(!version_accepted(0) && !version_accepted(3));
    }

    #[test]
    fn fuzz_garbage_bytes_never_panic_the_decoder() {
        let mut rng = Rng64::seed_from_u64(77);
        for _ in 0..2000 {
            let len = rng.gen_range(0..64);
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let _ = Frame::decode(&bytes); // must not panic
        }
        assert_eq!(Frame::decode(&[]), Err(ProtoError::Truncated));
        assert_eq!(Frame::decode(&[99]), Err(ProtoError::UnknownType(99)));
    }

    #[test]
    fn reader_rejects_oversized_and_zero_lengths() {
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes();
        let mut r = FrameReader::new(&huge[..]);
        assert!(matches!(
            r.poll(),
            Err(FrameError::Proto(ProtoError::BadLength(_)))
        ));
        let zero = 0u32.to_le_bytes();
        let mut r = FrameReader::new(&zero[..]);
        assert!(matches!(
            r.poll(),
            Err(FrameError::Proto(ProtoError::BadLength(0)))
        ));
    }

    #[test]
    fn reader_streams_back_to_back_frames_and_eof() {
        let mut wire = Frame::Ping { nonce: 7 }.encode();
        wire.extend(Frame::Step.encode());
        wire.extend(
            Frame::TickDelta {
                tick: 3,
                stamp_nanos: 9,
                sid: 1,
                snapshot: true,
                adds: vec![1, 2, 3],
                removes: vec![],
            }
            .encode(),
        );
        let mut r = FrameReader::new(&wire[..]);
        assert!(matches!(
            r.poll().unwrap(),
            ReadOutcome::Frame(Frame::Ping { nonce: 7 })
        ));
        assert!(matches!(r.poll().unwrap(), ReadOutcome::Frame(Frame::Step)));
        match r.poll().unwrap() {
            ReadOutcome::Frame(Frame::TickDelta { adds, .. }) => assert_eq!(adds, vec![1, 2, 3]),
            other => panic!("wrong outcome {other:?}"),
        }
        assert!(matches!(r.poll().unwrap(), ReadOutcome::Eof));
        // EOF mid-frame is an io error, not a silent truncation.
        let cut = &Frame::Ping { nonce: 7 }.encode()[..6];
        let mut r = FrameReader::new(cut);
        assert!(matches!(r.poll(), Err(FrameError::Io(_))));
    }
}
