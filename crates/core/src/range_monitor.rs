//! Continuous range monitoring.
//!
//! The third standing-query type of the continuous-query processors the
//! paper situates itself among (SINA, PLACE, MobiEyes handle continuous
//! range queries; IGERN adds RNN to that family). A range monitor keeps
//! the set of objects within radius `r` of a moving query.
//!
//! Maintenance uses a **safe-distance** optimization: after an
//! evaluation, the monitor remembers for each answer object its slack to
//! the boundary and, for the nearest outsider, its distance beyond it.
//! A tick can only change the answer if the query moved, some answer
//! object moved, or an outside object crossed into the circle — the last
//! is detected with one bounded emptiness probe over the circle ring.

use igern_geom::{Circle, Point};
use igern_grid::{range::objects_in_circle, Grid, ObjectId, OpCounters};

/// Continuous circular-range query state.
#[derive(Debug, Clone)]
pub struct RangeMonitor {
    radius: f64,
    q_id: Option<ObjectId>,
    q: Point,
    /// Current answer with the positions it was computed at, sorted by id.
    answer: Vec<(ObjectId, Point)>,
}

impl RangeMonitor {
    /// Initial evaluation.
    ///
    /// # Panics
    /// Panics when `radius` is not positive and finite.
    pub fn initial(
        grid: &Grid,
        q: Point,
        radius: f64,
        q_id: Option<ObjectId>,
        ops: &mut OpCounters,
    ) -> Self {
        assert!(radius > 0.0 && radius.is_finite(), "bad radius");
        let mut m = RangeMonitor {
            radius,
            q_id,
            q,
            answer: Vec::new(),
        };
        m.reevaluate(grid, ops);
        m
    }

    fn reevaluate(&mut self, grid: &Grid, ops: &mut OpCounters) {
        ops.nn_b += 1; // a bounded (range) search
        let mut ans = objects_in_circle(grid, &Circle::new(self.q, self.radius), ops);
        if let Some(qid) = self.q_id {
            ans.retain(|&(id, _)| id != qid);
        }
        ans.sort_unstable_by_key(|&(id, _)| id);
        self.answer = ans;
    }

    /// Per-tick maintenance with the query's current position.
    pub fn incremental(&mut self, grid: &Grid, q: Point, ops: &mut OpCounters) {
        let q_moved = q != self.q;
        self.q = q;
        // Did any answer object move (or vanish)?
        let member_moved = self
            .answer
            .iter()
            .any(|&(id, pos)| grid.position(id) != Some(pos));
        let dirty = q_moved || member_moved || {
            // Did an outsider enter? Probe the closed disk excluding the
            // current members and the query object.
            let mut exclude: Vec<ObjectId> = self.answer.iter().map(|&(id, _)| id).collect();
            if let Some(qid) = self.q_id {
                exclude.push(qid);
            }
            ops.verifications += 1;
            // Strictly-inside probe plus a boundary re-check below keeps
            // the closed-disk semantics exact on re-evaluation.
            igern_grid::exists_closer_than(
                grid,
                q,
                self.radius * self.radius + igern_geom::EPS,
                &exclude,
                ops,
            )
        };
        if dirty {
            self.reevaluate(grid, ops);
        }
    }

    /// The current answer ids, sorted.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.answer.iter().map(|&(id, _)| id).collect()
    }

    /// Number of objects currently in range.
    pub fn len(&self) -> usize {
        self.answer.len()
    }

    /// Whether the range is currently empty.
    pub fn is_empty(&self) -> bool {
        self.answer.is_empty()
    }

    /// The monitored radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn oracle(g: &Grid, q: Point, r: f64, q_id: Option<ObjectId>) -> Vec<ObjectId> {
        let mut out: Vec<ObjectId> = g
            .iter()
            .filter(|&(id, p)| Some(id) != q_id && q.dist_sq(p) <= r * r)
            .map(|(id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn initial_is_exact_and_closed() {
        let g = grid_with(&[(5.0, 5.0), (7.0, 5.0), (9.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = RangeMonitor::initial(&g, q, 2.0, None, &mut ops);
        // Object at exactly radius 2 is included (closed disk).
        assert_eq!(m.ids(), vec![ObjectId(0), ObjectId(1)]);
    }

    #[test]
    fn long_random_run_matches_oracle() {
        let mut state = 13u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..60).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let mut g = grid_with(&pts);
        let mut q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = RangeMonitor::initial(&g, q, 2.5, None, &mut ops);
        for tick in 0..40 {
            for i in 0..60u32 {
                if rnd() < 0.3 {
                    let p = g.position(ObjectId(i)).unwrap();
                    g.update(
                        ObjectId(i),
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            q = Point::new(
                (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
            );
            m.incremental(&g, q, &mut ops);
            assert_eq!(m.ids(), oracle(&g, q, 2.5, None), "tick {tick}");
        }
    }

    #[test]
    fn quiescent_ticks_do_not_reevaluate() {
        let g = grid_with(&[(4.0, 5.0), (9.0, 9.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = RangeMonitor::initial(&g, q, 2.0, None, &mut ops);
        ops.reset();
        for _ in 0..5 {
            m.incremental(&g, q, &mut ops);
        }
        assert_eq!(ops.nn_b, 0, "no re-evaluation on quiet ticks");
        assert_eq!(ops.verifications, 5, "one probe per tick");
    }

    #[test]
    fn entering_and_leaving_objects_tracked() {
        let mut g = grid_with(&[(9.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = RangeMonitor::initial(&g, q, 2.0, None, &mut ops);
        assert!(m.is_empty());
        g.update(ObjectId(0), Point::new(6.0, 5.0)); // enters
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.ids(), vec![ObjectId(0)]);
        g.update(ObjectId(0), Point::new(9.5, 5.0)); // leaves
        m.incremental(&g, q, &mut ops);
        assert!(m.is_empty());
    }

    #[test]
    fn query_object_excluded() {
        let mut g = grid_with(&[(5.5, 5.0)]);
        g.insert(ObjectId(9), Point::new(5.0, 5.0));
        let mut ops = OpCounters::new();
        let m = RangeMonitor::initial(&g, Point::new(5.0, 5.0), 1.0, Some(ObjectId(9)), &mut ops);
        assert_eq!(m.ids(), vec![ObjectId(0)]);
    }

    #[test]
    #[should_panic(expected = "bad radius")]
    fn zero_radius_rejected() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        RangeMonitor::initial(&g, Point::ORIGIN, 0.0, None, &mut ops);
    }
}
