//! IGERN — *Incremental and General Evaluation of continuous Reverse
//! Nearest neighbor queries* (Kang, Mokbel, Shekhar, Xia, Zhang;
//! ICDE 2007) — and the baselines it is evaluated against.
//!
//! # The algorithms
//!
//! * [`mono::MonoIgern`] — continuous monochromatic RNN (Algorithms 1–2):
//!   one bounded *alive region* plus a small candidate set `RNNcand` is
//!   monitored instead of the whole space.
//! * [`bi::BiIgern`] — continuous bichromatic RNN (Algorithms 3–4), the
//!   first continuous algorithm for that case: the monitored set `NN_A`
//!   bounds a region outside which no B-object can be an answer.
//! * [`baselines::Crnn`] — the six-pie continuous monochromatic monitor of
//!   Xia & Zhang (ICDE'06), the state of the art the paper compares to.
//! * [`baselines::tpl_snapshot`] — the snapshot TPL algorithm of Tao et
//!   al. (VLDB'04), re-evaluated from scratch every timestamp.
//! * [`baselines::voronoi_snapshot`] — repetitive construction of the
//!   query's Voronoi cell, the bichromatic comparison point.
//! * [`naive`] — O(n·m) brute-force oracles used to verify all of the
//!   above in tests.
//!
//! # Infrastructure
//!
//! * [`store::SpatialStore`] — the shared grid index over the update
//!   stream (one grid for monochromatic data, twin grids for the two
//!   bichromatic types).
//! * [`monitor`] — the [`ContinuousMonitor`] trait: one interface over
//!   every evaluation strategy, each publishing the *watch set* of grid
//!   cells used for dirty-region update routing.
//! * [`processor`] — a continuous query processor running many queries of
//!   mixed algorithms over one stream, skipping queries whose watched
//!   cells saw no updates and collecting per-tick metrics.
//! * [`eval`] — the per-query evaluation step ([`eval::evaluate_query`])
//!   shared by the serial processor and the sharded `igern-engine`
//!   worker pool, so every execution engine produces identical answers.
//! * [`batch`] — the anchor-cell shared-scan batch evaluator
//!   ([`batch::BatchEvaluator`]): same-class queries anchored in the same
//!   cell share one ring-ordered priming pass, bit-identical to the
//!   per-query path.
//! * [`history`] — the bounded per-query sample log (ring buffer plus an
//!   exact running aggregate).
//! * [`costmodel`] — the analytical cost model of Section 6.
//! * [`metrics`] — per-tick samples and experiment aggregation.
//! * [`obs`] — the observability layer: a dependency-free
//!   [`obs::MetricsRegistry`] (counters, gauges, histograms) with
//!   Prometheus-text and JSON exporters, instrumenting every engine.
//! * [`knn_monitor`] / [`range_monitor`] — companion continuous k-NN and
//!   range facilities (the other standing-query types of the processors
//!   the paper situates itself among).
//! * [`mono::MonoIgernK`] / [`bi::BiIgernK`] — the reverse k-NN
//!   generalization (journal-version extension).
//! * [`render`] — ASCII visualization of regions and occupancy.
//!
//! # Example
//!
//! ```
//! use igern_core::MonoIgern;
//! use igern_geom::{Aabb, Point};
//! use igern_grid::{Grid, ObjectId, OpCounters};
//!
//! // Three objects on a 16×16 grid; monitor the RNNs of a query point.
//! let mut grid = Grid::new(Aabb::from_coords(0.0, 0.0, 100.0, 100.0), 16);
//! grid.insert(ObjectId(0), Point::new(40.0, 50.0));
//! grid.insert(ObjectId(1), Point::new(65.0, 50.0));
//! grid.insert(ObjectId(2), Point::new(10.0, 10.0));
//!
//! let mut ops = OpCounters::new();
//! let q = Point::new(50.0, 50.0);
//! let mut monitor = MonoIgern::initial(&grid, q, None, &mut ops);
//! assert_eq!(monitor.rnn(), &[ObjectId(0), ObjectId(1)]);
//!
//! // Object 1 steps between the query and object 0: object 0 is now
//! // closer to object 1 than to the query and drops out of the answer.
//! grid.update(ObjectId(1), Point::new(45.0, 50.0));
//! monitor.incremental(&grid, q, &mut ops);
//! assert_eq!(monitor.rnn(), &[ObjectId(1)]);
//! ```

pub mod baselines;
pub mod batch;
pub mod bi;
pub mod costmodel;
pub mod eval;
pub mod history;
pub mod hooks;
pub mod knn_monitor;
pub mod metrics;
pub mod monitor;
pub mod mono;
pub mod naive;
pub mod net_monitor;
pub mod netspace;
pub mod obs;
pub mod processor;
pub mod prune;
pub mod range_monitor;
pub mod render;
pub mod scratch;
pub mod store;
pub mod types;

pub use batch::{BatchClass, BatchEvaluator, Feeds, SlotLane};
pub use bi::{BiIgern, BiIgernK};
pub use eval::{can_skip, evaluate_at, evaluate_query, presample, Presample, QuerySlot};
pub use history::History;
pub use hooks::{SharedSimHooks, SimHooks};
pub use knn_monitor::KnnMonitor;
pub use monitor::ContinuousMonitor;
pub use mono::{MonoIgern, MonoIgernK};
pub use net_monitor::{NetKnnMonitor, NetRknnMonitor};
pub use netspace::{net_lb, NetPos, NetScratch, NetView, NetworkSpace};
pub use range_monitor::RangeMonitor;
pub use scratch::EvalScratch;
pub use store::SpatialStore;
pub use types::{DistanceMode, ObjectKind};
