//! The [`ContinuousMonitor`] trait: one interface over every continuous
//! evaluation strategy the processor can run, plus the *watch set* each
//! strategy exposes for dirty-region update routing.
//!
//! # Watch sets
//!
//! After every evaluation a monitor publishes the set of grid cells whose
//! updates could change its next answer ([`ContinuousMonitor::monitored_cells`]).
//! The processor intersects that set (plus the query's own anchor cell)
//! with the tick's dirty cells and skips the query entirely when they are
//! disjoint — the *skip invariant*: a query may be skipped only if no
//! dirty cell intersects its monitored region ∪ anchor cell.
//!
//! Each watch set below is a conservative closure of the cells the
//! algorithm's next incremental step can read:
//!
//! * **IGERN (mono / RkNN)** — the alive region, the candidates' cells,
//!   and the disk `disk(q, 2·max_cand_dist)`. Verification for candidate
//!   `c` probes `disk(c, |c−q|) ⊆ disk(q, 2|c−q|)`, so any object entering
//!   or leaving a verification disk dirties a cell inside the big disk;
//!   Phase I only reads alive cells; a candidate's own move dirties its
//!   cell.
//! * **IGERN (bi / bichromatic RkNN)** — the alive region, the monitored
//!   `NN_A` objects' cells, and `disk(q, 2·R)` where `R` is the farthest
//!   corner distance of any alive cell. Every B-object in the alive
//!   region has `|b−q| ≤ R`, so its verification disk lies inside
//!   `disk(q, 2R)`; Phase I reads only alive cells; monitored A-objects
//!   may drift outside the region, hence their cells are added.
//! * **CRNN** — with all six pies occupied, the candidates' cells plus
//!   `disk(q, 2·max_cand_dist)` (each pie's NN search is bounded by its
//!   candidate's distance; verification as for IGERN). With an empty pie
//!   the pie search is open-ended and the monitor watches all cells.
//! * **k-NN** — with a full answer, `disk(q, r_k)` (the guard circle);
//!   underfull, all cells (a new object anywhere may join).
//! * **Snapshot baselines (TPL, Voronoi)** — all cells. They recompute
//!   from scratch, so they are only skipped on fully quiet ticks, where
//!   identical input yields an identical snapshot.
//!
//! Within-cell moves dirty their cell (see `igern_grid::Grid::update`),
//! so distance changes inside a watched cell are never missed.

use igern_geom::{Point, SECTOR_COUNT};
use igern_grid::{CellSet, Grid, ObjectId, OpCounters};

use crate::baselines::{tpl_snapshot_with, voronoi_snapshot, Crnn, TplAnswer};
use crate::batch::{BatchClass, Feeds};
use crate::bi::{BiIgern, BiIgernK};
use crate::knn_monitor::KnnMonitor;
use crate::mono::{MonoIgern, MonoIgernK};
use crate::net_monitor::{NetKnnMonitor, NetRknnMonitor};
use crate::processor::Algorithm;
use crate::prune::PruneGranularity;
use crate::scratch::EvalScratch;
use crate::store::SpatialStore;
use crate::types::DistanceMode;

/// A continuous query evaluation strategy with a routable watch set.
///
/// The processor drives the lifecycle: exactly one [`initial`] call on the
/// first evaluation, then [`incremental`] every subsequent tick the query
/// is not skipped. `q` is the query object's current position. `scratch`
/// is reusable evaluation workspace owned by the execution lane (serial
/// processor or engine worker); a warm scratch makes the steady-state
/// tick allocation-free.
///
/// [`initial`]: ContinuousMonitor::initial
/// [`incremental`]: ContinuousMonitor::incremental
pub trait ContinuousMonitor: Send + Sync {
    /// First evaluation, from scratch.
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    );

    /// Re-evaluation after one tick of updates.
    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    );

    /// The batch-evaluation grouping class, when this monitor can share an
    /// expanding-ring scan with same-class queries anchored in the same
    /// cell. `None` (the default) keeps the monitor on the per-query path.
    fn batch_class(&self) -> Option<BatchClass> {
        None
    }

    /// [`ContinuousMonitor::initial`] with the batch evaluator's
    /// shared-scan feeds. The default ignores the feeds; monitors that
    /// return a [`ContinuousMonitor::batch_class`] override this (and must
    /// stay bit-identical to the feedless form for any feed state).
    fn initial_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let _ = feeds;
        self.initial(store, q, ops, scratch);
    }

    /// [`ContinuousMonitor::incremental`] with the batch evaluator's
    /// shared-scan feeds; see [`ContinuousMonitor::initial_feed`].
    fn incremental_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let _ = feeds;
        self.incremental(store, q, ops, scratch);
    }

    /// Write the current answer into `out` (cleared first), sorted by id.
    fn answer_into(&self, out: &mut Vec<ObjectId>);

    /// Cells whose updates may change the next answer; `None` means the
    /// monitor watches the whole space (skip only on quiet ticks).
    fn monitored_cells(&self) -> Option<&CellSet>;

    /// Number of monitored objects (|RNNcand| / |NN_A| / pie count / k).
    fn num_monitored(&self) -> usize;

    /// Area of the monitored region (0 for algorithms without one).
    fn region_area(&self, store: &SpatialStore) -> f64;
}

impl Algorithm {
    /// Build a fresh (uninitialized) monitor for a query anchored at
    /// moving object `q_id`.
    pub fn make_monitor(self, q_id: Option<ObjectId>) -> Box<dyn ContinuousMonitor> {
        match self {
            Algorithm::IgernMono => Box::new(MonoIgernMonitor::new(q_id)),
            Algorithm::Crnn => Box::new(CrnnMonitor::new(q_id)),
            Algorithm::TplRepeat => Box::new(TplRepeatMonitor::new(q_id)),
            Algorithm::IgernBi => Box::new(BiIgernMonitor::new(q_id)),
            Algorithm::VoronoiRepeat => Box::new(VoronoiRepeatMonitor::new(q_id)),
            Algorithm::IgernMonoK(k) => Box::new(MonoIgernKMonitor::new(q_id, k)),
            Algorithm::IgernBiK(k) => Box::new(BiIgernKMonitor::new(q_id, k)),
            Algorithm::Knn(k) => Box::new(KnnQueryMonitor::new(q_id, k)),
        }
    }

    /// [`Algorithm::make_monitor`] with a distance-mode axis. Euclidean
    /// mode dispatches to the per-algorithm monitors above; network mode
    /// maps each algorithm family onto its graph-distance evaluator (the
    /// mono family — including the snapshot baselines, which are
    /// Euclidean-specific formulations — onto [`NetRknnMonitor::mono`],
    /// the bi family onto [`NetRknnMonitor::bi`], kNN onto
    /// [`NetKnnMonitor`]), preserving each algorithm's k and
    /// chromaticity so the answer *semantics* of a query survive a mode
    /// switch unchanged.
    pub fn make_monitor_in(
        self,
        mode: DistanceMode,
        q_id: Option<ObjectId>,
    ) -> Box<dyn ContinuousMonitor> {
        match mode {
            DistanceMode::Euclidean => self.make_monitor(q_id),
            DistanceMode::Network => match self {
                Algorithm::IgernMono | Algorithm::Crnn | Algorithm::TplRepeat => {
                    Box::new(NetRknnMonitor::mono(q_id, 1))
                }
                Algorithm::IgernMonoK(k) => Box::new(NetRknnMonitor::mono(q_id, k)),
                Algorithm::IgernBi | Algorithm::VoronoiRepeat => {
                    Box::new(NetRknnMonitor::bi(q_id, 1))
                }
                Algorithm::IgernBiK(k) => Box::new(NetRknnMonitor::bi(q_id, k)),
                Algorithm::Knn(k) => Box::new(NetKnnMonitor::new(q_id, k)),
            },
        }
    }
}

/// Reuse `watch`'s allocation when the capacity already matches.
fn reset_watch(watch: &mut CellSet, num_cells: usize) {
    if watch.capacity() == num_cells {
        watch.clear();
    } else {
        *watch = CellSet::new(num_cells);
    }
}

/// Add the candidates' cells and `disk(q, 2·max_cand_dist)` to `watch` —
/// the verification closure shared by the candidate-set monitors. Takes
/// the (position, id) pairs the evaluators already cache, so no position
/// lookups or id-vector allocations are needed.
fn add_candidate_closure<I>(grid: &Grid, q: Point, cand: I, watch: &mut CellSet)
where
    I: IntoIterator<Item = (Point, ObjectId)>,
{
    let mut max_d_sq = 0.0f64;
    for (p, _) in cand {
        watch.insert(grid.cell_of_point(p));
        max_d_sq = max_d_sq.max(p.dist_sq(q));
    }
    // Any disk centered at q covers q's own cell, so the anchor cell is
    // always watched even with an empty candidate set.
    grid.add_cells_in_disk(q, 2.0 * max_d_sq.sqrt(), watch);
}

/// [`MonoIgern`] behind the routable interface.
pub struct MonoIgernMonitor {
    q_id: Option<ObjectId>,
    inner: Option<MonoIgern>,
    watch: CellSet,
}

impl MonoIgernMonitor {
    /// A monitor for a query anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>) -> Self {
        MonoIgernMonitor {
            q_id,
            inner: None,
            watch: CellSet::new(0),
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        self.watch.clone_from(m.alive_cells());
        add_candidate_closure(
            store.all(),
            q,
            m.candidate_pairs().iter().copied(),
            &mut self.watch,
        );
    }
}

impl ContinuousMonitor for MonoIgernMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.initial_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn batch_class(&self) -> Option<BatchClass> {
        Some(BatchClass::MonoRnn)
    }

    fn initial_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner = Some(MonoIgern::initial_in_feed(
            store.all(),
            feeds.all,
            q,
            self.q_id,
            PruneGranularity::default(),
            ops,
            scratch,
        ));
        self.rebuild_watch(store, q);
    }

    fn incremental_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental_in_feed(store.all(), feeds.all, q, ops, scratch);
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend_from_slice(m.rnn());
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        self.inner.as_ref().map(|_| &self.watch)
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.num_monitored())
    }

    fn region_area(&self, store: &SpatialStore) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |m| m.monitored_area(store.all()))
    }
}

/// [`MonoIgernK`] behind the routable interface.
pub struct MonoIgernKMonitor {
    q_id: Option<ObjectId>,
    k: usize,
    inner: Option<MonoIgernK>,
    watch: CellSet,
}

impl MonoIgernKMonitor {
    /// A monitor for an order-`k` query anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>, k: usize) -> Self {
        MonoIgernKMonitor {
            q_id,
            k,
            inner: None,
            watch: CellSet::new(0),
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        self.watch.clone_from(m.alive_cells());
        add_candidate_closure(
            store.all(),
            q,
            m.candidate_pairs().iter().copied(),
            &mut self.watch,
        );
    }
}

impl ContinuousMonitor for MonoIgernKMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.initial_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn batch_class(&self) -> Option<BatchClass> {
        Some(BatchClass::MonoRknn(self.k))
    }

    fn initial_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner = Some(MonoIgernK::initial_in_feed(
            store.all(),
            feeds.all,
            q,
            self.q_id,
            self.k,
            ops,
            scratch,
        ));
        self.rebuild_watch(store, q);
    }

    fn incremental_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental_in_feed(store.all(), feeds.all, q, ops, scratch);
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend_from_slice(m.rnn());
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        self.inner.as_ref().map(|_| &self.watch)
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.num_monitored())
    }

    fn region_area(&self, store: &SpatialStore) -> f64 {
        let grid = store.all();
        let cell_area = grid.space().area() / grid.num_cells() as f64;
        self.inner
            .as_ref()
            .map_or(0.0, |m| m.alive_cells().count() as f64 * cell_area)
    }
}

/// [`BiIgern`] behind the routable interface.
pub struct BiIgernMonitor {
    q_id: Option<ObjectId>,
    inner: Option<BiIgern>,
    watch: CellSet,
}

/// Shared watch construction for the bichromatic monitors: alive region ∪
/// monitored A-objects' cells ∪ `disk(q, 2·R_alive_corner)`.
fn rebuild_bi_watch(
    store: &SpatialStore,
    q: Point,
    alive: &CellSet,
    monitored: &[(Point, ObjectId)],
    watch: &mut CellSet,
) {
    let grid = store.all();
    watch.clone_from(alive);
    let mut r_sq = 0.0f64;
    for c in alive.iter() {
        r_sq = r_sq.max(grid.cell_bounds(c).maxdist_sq(q));
    }
    grid.add_cells_in_disk(q, 2.0 * r_sq.sqrt(), watch);
    for &(p, _) in monitored {
        watch.insert(grid.cell_of_point(p));
    }
}

impl BiIgernMonitor {
    /// A monitor for a query anchored at kind-A object `q_id`.
    pub fn new(q_id: Option<ObjectId>) -> Self {
        BiIgernMonitor {
            q_id,
            inner: None,
            watch: CellSet::new(0),
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        rebuild_bi_watch(
            store,
            q,
            m.alive_cells(),
            m.monitored_pairs(),
            &mut self.watch,
        );
    }
}

impl ContinuousMonitor for BiIgernMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.initial_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn batch_class(&self) -> Option<BatchClass> {
        Some(BatchClass::BiRnn)
    }

    fn initial_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner = Some(BiIgern::initial_in_feed(
            store.grid_a(),
            store.grid_b(),
            feeds.a,
            feeds.b,
            q,
            self.q_id,
            PruneGranularity::default(),
            ops,
            scratch,
        ));
        self.rebuild_watch(store, q);
    }

    fn incremental_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental_in_feed(
                store.grid_a(),
                store.grid_b(),
                feeds.a,
                feeds.b,
                q,
                ops,
                scratch,
            );
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend_from_slice(m.rnn());
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        self.inner.as_ref().map(|_| &self.watch)
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.num_monitored())
    }

    fn region_area(&self, store: &SpatialStore) -> f64 {
        let grid = store.all();
        let cell_area = grid.space().area() / grid.num_cells() as f64;
        self.inner
            .as_ref()
            .map_or(0.0, |m| m.alive_cells().count() as f64 * cell_area)
    }
}

/// [`BiIgernK`] behind the routable interface.
pub struct BiIgernKMonitor {
    q_id: Option<ObjectId>,
    k: usize,
    inner: Option<BiIgernK>,
    watch: CellSet,
}

impl BiIgernKMonitor {
    /// A monitor for an order-`k` query anchored at kind-A object `q_id`.
    pub fn new(q_id: Option<ObjectId>, k: usize) -> Self {
        BiIgernKMonitor {
            q_id,
            k,
            inner: None,
            watch: CellSet::new(0),
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        rebuild_bi_watch(
            store,
            q,
            m.alive_cells(),
            m.monitored_pairs(),
            &mut self.watch,
        );
    }
}

impl ContinuousMonitor for BiIgernKMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.initial_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_feed(store, q, Feeds::default(), ops, scratch);
    }

    fn batch_class(&self) -> Option<BatchClass> {
        Some(BatchClass::BiRknn(self.k))
    }

    fn initial_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner = Some(BiIgernK::initial_in_feed(
            store.grid_a(),
            store.grid_b(),
            feeds.a,
            feeds.b,
            q,
            self.q_id,
            self.k,
            ops,
            scratch,
        ));
        self.rebuild_watch(store, q);
    }

    fn incremental_feed(
        &mut self,
        store: &SpatialStore,
        q: Point,
        feeds: Feeds<'_>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental_in_feed(
                store.grid_a(),
                store.grid_b(),
                feeds.a,
                feeds.b,
                q,
                ops,
                scratch,
            );
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend_from_slice(m.rnn());
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        self.inner.as_ref().map(|_| &self.watch)
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.num_monitored())
    }

    fn region_area(&self, store: &SpatialStore) -> f64 {
        let grid = store.all();
        let cell_area = grid.space().area() / grid.num_cells() as f64;
        self.inner
            .as_ref()
            .map_or(0.0, |m| m.alive_cells().count() as f64 * cell_area)
    }
}

/// [`Crnn`] behind the routable interface.
pub struct CrnnMonitor {
    q_id: Option<ObjectId>,
    inner: Option<Crnn>,
    watch: CellSet,
    /// All six pies occupied — the pie searches are bounded and `watch`
    /// is a valid closure. With an empty pie the search is open-ended.
    bounded: bool,
}

impl CrnnMonitor {
    /// A monitor for a query anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>) -> Self {
        CrnnMonitor {
            q_id,
            inner: None,
            watch: CellSet::new(0),
            bounded: false,
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        self.bounded = m.num_monitored() == SECTOR_COUNT;
        if !self.bounded {
            return;
        }
        let grid = store.all();
        reset_watch(&mut self.watch, grid.num_cells());
        add_candidate_closure(grid, q, m.candidate_pairs(), &mut self.watch);
    }
}

impl ContinuousMonitor for CrnnMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
        self.inner = Some(Crnn::initial(store.all(), q, self.q_id, ops));
        self.rebuild_watch(store, q);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental(store.all(), q, ops);
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend_from_slice(m.rnn());
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        if self.bounded {
            self.inner.as_ref().map(|_| &self.watch)
        } else {
            None
        }
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.num_monitored())
    }

    fn region_area(&self, store: &SpatialStore) -> f64 {
        self.inner
            .as_ref()
            .map_or(0.0, |m| m.monitored_area(store.all()))
    }
}

/// [`KnnMonitor`] (continuous k-NN) behind the routable interface.
pub struct KnnQueryMonitor {
    q_id: Option<ObjectId>,
    k: usize,
    inner: Option<KnnMonitor>,
    watch: CellSet,
    /// Full answer — the guard circle bounds the next step's reads.
    bounded: bool,
}

impl KnnQueryMonitor {
    /// A monitor for a k-NN query anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>, k: usize) -> Self {
        KnnQueryMonitor {
            q_id,
            k,
            inner: None,
            watch: CellSet::new(0),
            bounded: false,
        }
    }

    fn rebuild_watch(&mut self, store: &SpatialStore, q: Point) {
        let m = self.inner.as_ref().expect("monitor not initialized");
        self.bounded = m.answer().len() >= m.k();
        if !self.bounded {
            return;
        }
        let grid = store.all();
        reset_watch(&mut self.watch, grid.num_cells());
        let r_k = m.answer().last().map_or(0.0, |n| n.dist_sq.sqrt());
        grid.add_cells_in_disk(q, r_k, &mut self.watch);
    }
}

impl ContinuousMonitor for KnnQueryMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
        self.inner = Some(KnnMonitor::initial(store.all(), q, self.q_id, self.k, ops));
        self.rebuild_watch(store, q);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.inner
            .as_mut()
            .expect("initial must run first")
            .incremental_in(store.all(), q, ops, scratch);
        self.rebuild_watch(store, q);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        if let Some(m) = &self.inner {
            out.extend(m.answer().iter().map(|n| n.id));
            out.sort_unstable();
        }
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        if self.bounded {
            self.inner.as_ref().map(|_| &self.watch)
        } else {
            None
        }
    }

    fn num_monitored(&self) -> usize {
        self.inner.as_ref().map_or(0, |m| m.answer().len())
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}

/// Snapshot TPL re-run every tick behind the routable interface. Owns its
/// [`TplAnswer`] so repeated snapshots reuse the answer buffers instead of
/// reallocating them every tick.
pub struct TplRepeatMonitor {
    q_id: Option<ObjectId>,
    ans: TplAnswer,
}

impl TplRepeatMonitor {
    /// A monitor for a query anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>) -> Self {
        TplRepeatMonitor {
            q_id,
            ans: TplAnswer::default(),
        }
    }
}

impl ContinuousMonitor for TplRepeatMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental(store, q, ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        tpl_snapshot_with(store.all(), q, self.q_id, ops, scratch, &mut self.ans);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend_from_slice(&self.ans.rnn);
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        None
    }

    fn num_monitored(&self) -> usize {
        self.ans.candidates.len()
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}

/// Repetitive Voronoi-cell construction behind the routable interface.
pub struct VoronoiRepeatMonitor {
    q_id: Option<ObjectId>,
    rnn: Vec<ObjectId>,
    sites_used: usize,
}

impl VoronoiRepeatMonitor {
    /// A monitor for a query anchored at kind-A object `q_id`.
    pub fn new(q_id: Option<ObjectId>) -> Self {
        VoronoiRepeatMonitor {
            q_id,
            rnn: Vec::new(),
            sites_used: 0,
        }
    }
}

impl ContinuousMonitor for VoronoiRepeatMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental(store, q, ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
        let ans = voronoi_snapshot(store.grid_a(), store.grid_b(), q, self.q_id, ops);
        self.sites_used = ans.sites_used;
        self.rnn = ans.rnn;
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend_from_slice(&self.rnn);
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        None
    }

    fn num_monitored(&self) -> usize {
        self.sites_used
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}

/// Inert monitor installed in tombstoned query slots so their evaluator
/// state (and its allocations) can be dropped.
pub struct NullMonitor;

impl ContinuousMonitor for NullMonitor {
    fn initial(
        &mut self,
        _store: &SpatialStore,
        _q: Point,
        _ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
    }

    fn incremental(
        &mut self,
        _store: &SpatialStore,
        _q: Point,
        _ops: &mut OpCounters,
        _scratch: &mut EvalScratch,
    ) {
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        None
    }

    fn num_monitored(&self) -> usize {
        0
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ObjectKind;
    use igern_geom::Aabb;

    fn mono_store(points: &[(f64, f64)]) -> SpatialStore {
        let kinds = vec![ObjectKind::A; points.len()];
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        s.load(&pts);
        s
    }

    #[test]
    fn mono_watch_covers_alive_and_candidate_cells() {
        let store = mono_store(&[(5.0, 5.0), (4.0, 5.0), (6.5, 5.0), (1.0, 1.0)]);
        let mut ops = OpCounters::new();
        let q = Point::new(5.0, 5.0);
        let mut mon = MonoIgernMonitor::new(Some(ObjectId(0)));
        mon.initial(&store, q, &mut ops, &mut EvalScratch::default());
        let watch = mon.monitored_cells().expect("mono watch is bounded");
        let inner = mon.inner.as_ref().unwrap();
        for c in inner.alive_cells().iter() {
            assert!(watch.contains(c), "alive cell {c} missing from watch");
        }
        for id in inner.candidates() {
            let p = store.all().position(id).unwrap();
            assert!(watch.contains(store.all().cell_of_point(p)));
        }
        assert!(watch.contains(store.all().cell_of_point(q)));
    }

    #[test]
    fn knn_watch_is_the_guard_circle_or_everything() {
        let store = mono_store(&[(5.0, 5.0), (4.0, 5.0), (6.0, 5.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let q = Point::new(5.0, 5.0);
        // Underfull answer (k > population): watch everything.
        let mut big = KnnQueryMonitor::new(Some(ObjectId(0)), 10);
        big.initial(&store, q, &mut ops, &mut EvalScratch::default());
        assert!(big.monitored_cells().is_none());
        // Full answer: a bounded disk that contains the anchor cell but
        // not the far corner.
        let mut two = KnnQueryMonitor::new(Some(ObjectId(0)), 2);
        two.initial(&store, q, &mut ops, &mut EvalScratch::default());
        let watch = two.monitored_cells().expect("full answer bounds the watch");
        assert!(watch.contains(store.all().cell_of_point(q)));
        assert!(!watch.contains(store.all().cell_of_point(Point::new(9.9, 9.9))));
    }

    #[test]
    fn snapshot_monitors_watch_everything() {
        let store = mono_store(&[(5.0, 5.0), (4.0, 5.0)]);
        let mut ops = OpCounters::new();
        let mut tpl = TplRepeatMonitor::new(Some(ObjectId(0)));
        tpl.initial(
            &store,
            Point::new(5.0, 5.0),
            &mut ops,
            &mut EvalScratch::default(),
        );
        assert!(tpl.monitored_cells().is_none());
        let mut out = Vec::new();
        tpl.answer_into(&mut out);
        assert_eq!(out, vec![ObjectId(1)]);
    }

    #[test]
    fn crnn_watch_unbounded_while_a_pie_is_empty() {
        // A single neighbor occupies one pie; the other five are empty.
        let store = mono_store(&[(5.0, 5.0), (6.0, 5.0)]);
        let mut ops = OpCounters::new();
        let mut mon = CrnnMonitor::new(Some(ObjectId(0)));
        mon.initial(
            &store,
            Point::new(5.0, 5.0),
            &mut ops,
            &mut EvalScratch::default(),
        );
        assert!(mon.num_monitored() < SECTOR_COUNT);
        assert!(mon.monitored_cells().is_none());
    }

    #[test]
    fn null_monitor_is_inert() {
        let store = mono_store(&[(5.0, 5.0)]);
        let mut ops = OpCounters::new();
        let mut null = NullMonitor;
        null.initial(
            &store,
            Point::new(1.0, 1.0),
            &mut ops,
            &mut EvalScratch::default(),
        );
        let mut out = vec![ObjectId(7)];
        null.answer_into(&mut out);
        assert!(out.is_empty());
        assert!(null.monitored_cells().is_none());
        assert_eq!(null.num_monitored(), 0);
    }

    #[test]
    fn every_algorithm_builds_a_monitor() {
        for algo in [
            Algorithm::IgernMono,
            Algorithm::Crnn,
            Algorithm::TplRepeat,
            Algorithm::IgernBi,
            Algorithm::VoronoiRepeat,
            Algorithm::IgernMonoK(2),
            Algorithm::IgernBiK(2),
            Algorithm::Knn(2),
        ] {
            let m = algo.make_monitor(Some(ObjectId(0)));
            assert_eq!(m.num_monitored(), 0, "{algo:?} starts empty");
        }
    }
}
