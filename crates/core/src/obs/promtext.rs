//! A lint-grade parser for the Prometheus text exposition format.
//!
//! Used by the `igern stats` subcommand to render metric dumps and by
//! the CI smoke check to validate that what the exporter wrote actually
//! parses — without depending on an external `promtool`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed sample line: `name{labels} value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

/// What `lint` verified.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Metric families (`# TYPE` lines).
    pub families: usize,
    /// Sample lines.
    pub samples: usize,
    /// Parsed samples, in input order.
    pub parsed: Vec<Sample>,
    /// `name -> type` from TYPE lines.
    pub types: BTreeMap<String, String>,
}

/// A lint failure, with the 1-based line number it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LintError {}

fn is_name(s: &str, allow_colon: bool) -> bool {
    !s.is_empty()
        && !s.as_bytes()[0].is_ascii_digit()
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || (allow_colon && b == b':'))
}

fn err(line: usize, message: impl Into<String>) -> LintError {
    LintError {
        line,
        message: message.into(),
    }
}

/// Parsed `name="value"` pairs from one label block.
type LabelPairs = Vec<(String, String)>;

/// Parse the label block after `{`, returning the pairs and the rest of
/// the line after `}`.
fn parse_labels(line_no: usize, s: &str) -> Result<(LabelPairs, &str), LintError> {
    let mut labels = Vec::new();
    let mut rest = s;
    loop {
        rest = rest.trim_start();
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((labels, r));
        }
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line_no, "label without '='"))?;
        let key = rest[..eq].trim();
        if !is_name(key, false) {
            return Err(err(line_no, format!("bad label name {key:?}")));
        }
        rest = rest[eq + 1..].trim_start();
        let mut chars = rest.char_indices();
        if chars.next().map(|(_, c)| c) != Some('"') {
            return Err(err(line_no, "label value must be quoted"));
        }
        let mut value = String::new();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    _ => return Err(err(line_no, "bad escape in label value")),
                },
                '"' => {
                    end = Some(i + 1);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| err(line_no, "unterminated label value"))?;
        labels.push((key.to_string(), value));
        rest = rest[end..].trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err(err(line_no, "expected ',' or '}' after label"));
        }
    }
}

fn parse_value(line_no: usize, s: &str) -> Result<f64, LintError> {
    let s = s.trim();
    match s {
        "+Inf" | "Inf" => return Ok(f64::INFINITY),
        "-Inf" => return Ok(f64::NEG_INFINITY),
        "NaN" => return Ok(f64::NAN),
        _ => {}
    }
    s.parse::<f64>()
        .map_err(|_| err(line_no, format!("bad sample value {s:?}")))
}

/// Lint + parse a Prometheus text document. Checks:
///
/// * every non-comment line is `name[{labels}] value`;
/// * metric and label names are well-formed;
/// * every sample's base name has a preceding `# TYPE` line (histogram
///   samples may use the `_bucket`/`_sum`/`_count` suffixes);
/// * histogram families end with an `le="+Inf"` bucket whose count
///   equals `_count`.
pub fn lint(text: &str) -> Result<LintReport, LintError> {
    let mut report = LintReport::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let comment = comment.trim_start();
            if let Some(rest) = comment.strip_prefix("TYPE ") {
                let mut it = rest.split_whitespace();
                let name = it.next().ok_or_else(|| err(line_no, "TYPE without name"))?;
                let kind = it.next().ok_or_else(|| err(line_no, "TYPE without kind"))?;
                if !is_name(name, true) {
                    return Err(err(line_no, format!("bad metric name {name:?}")));
                }
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return Err(err(line_no, format!("unknown metric type {kind:?}")));
                }
                if report
                    .types
                    .insert(name.to_string(), kind.to_string())
                    .is_some()
                {
                    return Err(err(line_no, format!("duplicate TYPE for {name}")));
                }
                report.families += 1;
            }
            // HELP and plain comments are ignored.
            continue;
        }
        // Sample line.
        let name_end = line
            .find(|c: char| c == '{' || c.is_whitespace())
            .ok_or_else(|| err(line_no, "sample without value"))?;
        let name = &line[..name_end];
        if !is_name(name, true) {
            return Err(err(line_no, format!("bad metric name {name:?}")));
        }
        let rest = &line[name_end..];
        let (labels, rest) = if let Some(r) = rest.strip_prefix('{') {
            parse_labels(line_no, r)?
        } else {
            (Vec::new(), rest)
        };
        let value = parse_value(line_no, rest)?;
        let base = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let stripped = name.strip_suffix(suffix)?;
                if report.types.get(stripped).map(String::as_str) == Some("histogram") {
                    Some(stripped)
                } else {
                    None
                }
            })
            .unwrap_or(name);
        if !report.types.contains_key(base) {
            return Err(err(line_no, format!("sample {name:?} has no # TYPE line")));
        }
        let mut labels = labels;
        labels.sort();
        report.samples += 1;
        report.parsed.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    check_histograms(&report)?;
    Ok(report)
}

/// Per histogram family and label set: the `+Inf` bucket must exist and
/// match `_count`.
fn check_histograms(report: &LintReport) -> Result<(), LintError> {
    for (name, kind) in &report.types {
        if kind != "histogram" {
            continue;
        }
        let series: Vec<Vec<(String, String)>> = {
            let mut sets: Vec<_> = report
                .parsed
                .iter()
                .filter(|s| s.name == format!("{name}_count"))
                .map(|s| s.labels.clone())
                .collect();
            sets.dedup();
            sets
        };
        if series.is_empty() {
            return Err(err(0, format!("histogram {name} has no _count sample")));
        }
        for labels in series {
            let count = report
                .parsed
                .iter()
                .find(|s| s.name == format!("{name}_count") && s.labels == labels)
                .map(|s| s.value)
                .unwrap_or(f64::NAN);
            let inf = report.parsed.iter().find(|s| {
                s.name == format!("{name}_bucket")
                    && s.labels.iter().any(|(k, v)| k == "le" && v == "+Inf")
                    && s.labels.iter().filter(|(k, _)| k != "le").count() == labels.len()
                    && s.labels.iter().filter(|(k, _)| k != "le").eq(labels.iter())
            });
            match inf {
                Some(s) if s.value == count => {}
                Some(s) => {
                    return Err(err(
                        0,
                        format!(
                            "histogram {name}: +Inf bucket {} != count {}",
                            s.value, count
                        ),
                    ));
                }
                None => {
                    return Err(err(
                        0,
                        format!("histogram {name} is missing an le=\"+Inf\" bucket"),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_document() {
        let report = lint(
            "# HELP x ignored\n\
             # TYPE x counter\n\
             x 4\n\
             # TYPE lat histogram\n\
             lat_bucket{le=\"0.1\"} 1\n\
             lat_bucket{le=\"+Inf\"} 2\n\
             lat_sum 0.3\n\
             lat_count 2\n",
        )
        .expect("lints");
        assert_eq!(report.families, 2);
        assert_eq!(report.samples, 5);
        assert_eq!(report.parsed[0].value, 4.0);
    }

    #[test]
    fn rejects_untyped_samples() {
        let e = lint("x 1\n").unwrap_err();
        assert!(e.message.contains("no # TYPE"), "{e}");
    }

    #[test]
    fn rejects_bad_names_and_values() {
        assert!(lint("# TYPE 9x counter\n9x 1\n").is_err());
        assert!(lint("# TYPE x counter\nx one\n").is_err());
        assert!(lint("# TYPE x counter\nx{le=0.1} 1\n").is_err());
    }

    #[test]
    fn rejects_inconsistent_histograms() {
        let e = lint(
            "# TYPE lat histogram\n\
             lat_bucket{le=\"+Inf\"} 3\n\
             lat_sum 0.3\n\
             lat_count 2\n",
        )
        .unwrap_err();
        assert!(e.message.contains("!= count"), "{e}");
        let e = lint(
            "# TYPE lat histogram\n\
             lat_sum 0.3\n\
             lat_count 2\n",
        )
        .unwrap_err();
        assert!(e.message.contains("+Inf"), "{e}");
    }

    #[test]
    fn labeled_histograms_check_per_series() {
        lint(
            "# TYPE lat histogram\n\
             lat_bucket{w=\"0\",le=\"+Inf\"} 2\n\
             lat_sum{w=\"0\"} 0.3\n\
             lat_count{w=\"0\"} 2\n\
             lat_bucket{w=\"1\",le=\"+Inf\"} 5\n\
             lat_sum{w=\"1\"} 0.9\n\
             lat_count{w=\"1\"} 5\n",
        )
        .expect("per-series counts match");
    }

    #[test]
    fn escaped_label_values_roundtrip() {
        let report = lint("# TYPE c counter\nc{p=\"a\\\"b\\\\c\"} 1\n").expect("lints");
        assert_eq!(report.parsed[0].labels[0].1, "a\"b\\c");
    }
}
