//! A minimal recursive-descent JSON parser.
//!
//! Just enough to validate and read back the registry's own JSON dumps
//! (CI smoke check, `igern stats`) without pulling in serde. Supports
//! the full JSON grammar except `\uXXXX` surrogate pairs are decoded
//! individually (sufficient for the ASCII output the exporter emits).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` otherwise).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse failure at a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected {:?}", b as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            self.err(format!("expected {lit}"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => self.err(format!("unexpected {:?}", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (may be multi-byte).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        offset: self.pos,
                        message: "invalid utf-8".into(),
                    })?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        match text.parse::<f64>() {
            Ok(n) => Ok(Value::Number(n)),
            Err(_) => self.err(format!("bad number {text:?}")),
        }
    }
}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage after document");
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(parse(r#""a\nb""#).unwrap(), Value::String("a\nb".into()));
        let v = parse(r#"{"xs": [1, {"y": "z"}], "empty": [], "none": {}}"#).unwrap();
        let xs = v.get("xs").and_then(|x| x.as_array()).unwrap();
        assert_eq!(xs[0].as_f64(), Some(1.0));
        assert_eq!(xs[1].get("y").and_then(|y| y.as_str()), Some("z"));
        assert_eq!(v.get("empty").and_then(|e| e.as_array()), Some(&[][..]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "1 2", "nul", r#""\x""#] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        assert_eq!(parse(r#""é""#).unwrap(), Value::String("é".into()));
        assert_eq!(parse("\"é\"").unwrap(), Value::String("é".into()));
    }
}
