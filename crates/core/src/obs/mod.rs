//! The observability subsystem: a lightweight, dependency-free metrics
//! registry shared by every layer of the tick pipeline.
//!
//! # Model
//!
//! A [`MetricsRegistry`] owns a flat namespace of instruments, each
//! identified by a Prometheus-style name plus an optional sorted label
//! set:
//!
//! * [`Counter`] — a monotonic `u64` (events since process start);
//! * [`Gauge`] — a point-in-time `f64` (shard sizes, queue depths);
//! * [`Histogram`] — fixed cumulative buckets over `f64` observations
//!   (latencies in seconds, per-tick dirty-cell counts).
//!
//! Handles are cheap `Arc`-backed clones updated with relaxed atomics, so
//! the hot path (a worker thread recording a tick sample) never takes a
//! lock: registration locks a mutex once, updates are lock-free. The same
//! `(name, labels)` pair always resolves to the same underlying
//! instrument, so independent components can share a series safely.
//!
//! # Exporters
//!
//! [`MetricsRegistry::render_prometheus`] emits the Prometheus text
//! exposition format; [`MetricsRegistry::render_json`] a stable JSON
//! document. The sibling [`promtext`] and [`jsontext`] modules hold the
//! matching in-repo parsers so exports can be validated (CI smoke) and
//! rendered (`igern stats`) without external dependencies.
//!
//! # Pipeline metrics
//!
//! [`PipelineMetrics`] bundles the per-sample instruments common to every
//! tick engine (serial processor and sharded engine), so both report the
//! identical measurement surface — skip/evaluate counts, per-query
//! latency, §6 operation counters, and the `desync_total` counter fed by
//! graceful cell-desync handling.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use igern_grid::OpCounters;

use crate::metrics::TickSample;

pub mod export;
pub mod jsontext;
pub mod promtext;

/// Default latency buckets (seconds): 1 µs → 10 s, roughly log-spaced.
/// IGERN incremental ticks sit around a few µs; snapshot baselines and
/// whole-round phases reach milliseconds.
pub const LATENCY_BUCKETS_S: [f64; 12] = [
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2, 1e-1, 1.0,
];

/// Default buckets for small nonnegative counts (dirty cells per tick,
/// batch sizes): powers of two up to 4096.
pub const COUNT_BUCKETS: [f64; 12] = [
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 4096.0,
];

/// A monotonic event counter. Clones share the same underlying value.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (stored as `f64` bits). Clones share the same
/// underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the current value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the non-infinite buckets, strictly increasing.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (NOT cumulative; one extra slot at
    /// the end for the implicit `+Inf` bucket).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations, as `f64` bits (CAS-accumulated).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram over `f64` observations. Clones share the
/// same underlying series.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]) && bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite and strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let inner = &*self.0;
        let i = inner.bounds.partition_point(|&b| b < v);
        inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = inner.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match inner.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Record a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Cumulative `(upper_bound, count ≤ bound)` pairs; the final pair is
    /// `(f64::INFINITY, total count)` — the Prometheus `le` view.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let inner = &*self.0;
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(inner.buckets.len());
        for (i, b) in inner.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let bound = inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, acc));
        }
        out
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
pub(crate) enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
pub(crate) struct Entry {
    pub name: String,
    /// Sorted `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    pub instrument: Instrument,
}

/// The instrument namespace: registration is mutex-guarded and
/// idempotent; the handles it returns update lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Mutex<Vec<Entry>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn resolve(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
    ) -> Instrument {
        assert!(valid_name(name), "bad metric name {name:?}");
        assert!(
            labels.iter().all(|(k, _)| valid_name(k)),
            "bad label name in {labels:?}"
        );
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let mut entries = self.entries.lock().expect("registry lock");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return e.instrument.clone();
        }
        let instrument = make();
        entries.push(Entry {
            name: name.to_string(),
            labels,
            instrument: instrument.clone(),
        });
        instrument
    }

    /// Get or register the counter `name` (no labels).
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// Get or register the counter `name` with the given labels.
    ///
    /// # Panics
    /// Panics when `(name, labels)` is already registered as a different
    /// instrument kind, or the name is not `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.resolve(name, labels, || Instrument::Counter(Counter::default())) {
            Instrument::Counter(c) => c,
            _ => panic!("{name} is already registered as a non-counter"),
        }
    }

    /// Get or register the gauge `name` (no labels).
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// Get or register the gauge `name` with the given labels.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.resolve(name, labels, || Instrument::Gauge(Gauge::default())) {
            Instrument::Gauge(g) => g,
            _ => panic!("{name} is already registered as a non-gauge"),
        }
    }

    /// Get or register the histogram `name` (no labels) with the given
    /// bucket upper bounds (an implicit `+Inf` bucket is always added).
    /// When the series already exists, `bounds` is ignored.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.histogram_labeled(name, &[], bounds)
    }

    /// Get or register the histogram `name` with labels and bounds.
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.resolve(name, labels, || {
            Instrument::Histogram(Histogram::new(bounds))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("{name} is already registered as a non-histogram"),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("registry lock").len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot the entries sorted by `(name, labels)` — the stable order
    /// both exporters emit.
    pub(crate) fn sorted_entries(&self) -> Vec<Entry> {
        let mut entries = self.entries.lock().expect("registry lock").clone();
        entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        entries
    }
}

/// The per-sample instrument bundle shared by every tick engine, so the
/// serial processor and the sharded engine expose one measurement
/// surface. Names are prefixed (`<prefix>_queries_evaluated_total`, …).
#[derive(Debug, Clone)]
pub struct PipelineMetrics {
    /// Ticks completed (`<prefix>_ticks_total`).
    pub ticks_total: Counter,
    /// Position updates applied (`<prefix>_updates_total`).
    pub updates_total: Counter,
    /// Apply-updates phase latency (`<prefix>_apply_seconds`).
    pub apply_seconds: Histogram,
    /// Route + evaluate phase latency (`<prefix>_evaluate_seconds`).
    pub evaluate_seconds: Histogram,
    /// Per-query evaluation latency, evaluated queries only
    /// (`<prefix>_query_eval_seconds`).
    pub query_eval_seconds: Histogram,
    /// Query-ticks that ran the algorithm (`<prefix>_queries_evaluated_total`).
    pub queries_evaluated_total: Counter,
    /// Query-ticks skipped by dirty-region routing
    /// (`<prefix>_queries_skipped_total`).
    pub queries_skipped_total: Counter,
    /// Dirty cells observed per tick (`<prefix>_dirty_cells`).
    pub dirty_cells: Histogram,
    /// Multi-member shared-scan batch groups formed
    /// (`<prefix>_batch_groups_total`).
    pub batch_groups_total: Counter,
    /// Query-ticks evaluated inside a multi-member batch group
    /// (`<prefix>_batch_members_total`).
    pub batch_members_total: Counter,
    /// Cell desyncs survived (`<prefix>_desync_total`).
    pub desync_total: Counter,
    /// §6 operation counters (`<prefix>_ops_nn_total`, …).
    pub ops_nn_total: Counter,
    pub ops_nn_c_total: Counter,
    pub ops_nn_b_total: Counter,
    pub ops_verifications_total: Counter,
    pub ops_cells_visited_total: Counter,
    pub ops_objects_visited_total: Counter,
}

impl PipelineMetrics {
    /// Register (or re-attach to) the bundle under `prefix` in `registry`.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        let n = |suffix: &str| format!("{prefix}_{suffix}");
        PipelineMetrics {
            ticks_total: registry.counter(&n("ticks_total")),
            updates_total: registry.counter(&n("updates_total")),
            apply_seconds: registry.histogram(&n("apply_seconds"), &LATENCY_BUCKETS_S),
            evaluate_seconds: registry.histogram(&n("evaluate_seconds"), &LATENCY_BUCKETS_S),
            query_eval_seconds: registry.histogram(&n("query_eval_seconds"), &LATENCY_BUCKETS_S),
            queries_evaluated_total: registry.counter(&n("queries_evaluated_total")),
            queries_skipped_total: registry.counter(&n("queries_skipped_total")),
            dirty_cells: registry.histogram(&n("dirty_cells"), &COUNT_BUCKETS),
            batch_groups_total: registry.counter(&n("batch_groups_total")),
            batch_members_total: registry.counter(&n("batch_members_total")),
            desync_total: registry.counter(&n("desync_total")),
            ops_nn_total: registry.counter(&n("ops_nn_total")),
            ops_nn_c_total: registry.counter(&n("ops_nn_c_total")),
            ops_nn_b_total: registry.counter(&n("ops_nn_b_total")),
            ops_verifications_total: registry.counter(&n("ops_verifications_total")),
            ops_cells_visited_total: registry.counter(&n("ops_cells_visited_total")),
            ops_objects_visited_total: registry.counter(&n("ops_objects_visited_total")),
        }
    }

    /// Fold one query-tick sample into the bundle.
    pub fn record_sample(&self, s: &TickSample) {
        if s.skipped {
            self.queries_skipped_total.inc();
        } else {
            self.queries_evaluated_total.inc();
            self.query_eval_seconds.observe_duration(s.elapsed);
        }
        self.record_ops(&s.ops);
    }

    /// Fold a bare operation-counter delta (used where samples are not
    /// available, e.g. ad-hoc searches).
    pub fn record_ops(&self, ops: &OpCounters) {
        // Skipped samples carry all-zero ops; guard the common case so a
        // skip costs two counter bumps, not eight.
        if ops == &OpCounters::default() {
            return;
        }
        self.ops_nn_total.add(ops.nn);
        self.ops_nn_c_total.add(ops.nn_c);
        self.ops_nn_b_total.add(ops.nn_b);
        self.ops_verifications_total.add(ops.verifications);
        self.ops_cells_visited_total.add(ops.cells_visited);
        self.ops_objects_visited_total.add(ops.objects_visited);
        self.desync_total.add(ops.desyncs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_state_across_clones() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("ticks_total");
        c.inc();
        reg.counter("ticks_total").add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge_labeled("shard_size", &[("worker", "0")]);
        g.set(7.0);
        assert_eq!(
            reg.gauge_labeled("shard_size", &[("worker", "0")]).get(),
            7.0
        );
        // A different label set is a different series.
        assert_eq!(
            reg.gauge_labeled("shard_size", &[("worker", "1")]).get(),
            0.0
        );
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn histogram_buckets_accumulate_cumulatively() {
        let h = Histogram::new(&[1.0, 10.0]);
        for v in [0.5, 0.7, 5.0, 50.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 56.2).abs() < 1e-9);
        assert!((h.mean() - 14.05).abs() < 1e-9);
        let b = h.cumulative_buckets();
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], (1.0, 2));
        assert_eq!(b[1], (10.0, 3));
        assert_eq!(b[2].1, 4);
        assert!(b[2].0.is_infinite());
        // Boundary observation lands in its own bucket (le is inclusive).
        let h2 = Histogram::new(&[1.0]);
        h2.observe(1.0);
        assert_eq!(h2.cumulative_buckets()[0], (1.0, 1));
    }

    #[test]
    fn registration_is_idempotent_and_typed() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &LATENCY_BUCKETS_S);
        h.observe_duration(Duration::from_micros(3));
        // Re-registration ignores the (different) bounds and reuses state.
        let h2 = reg.histogram("lat", &[1.0]);
        assert_eq!(h2.count(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    #[should_panic(expected = "bad metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::new().counter("9bad name");
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = reg.counter("n");
        let h = reg.histogram("v", &[0.5]);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(if i % 2 == 0 { 0.25 } else { 0.75 });
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
        assert!((h.sum() - 2000.0).abs() < 1e-6);
        assert_eq!(h.cumulative_buckets()[0], (0.5, 2000));
    }

    #[test]
    fn pipeline_bundle_folds_samples() {
        let reg = MetricsRegistry::new();
        let pm = PipelineMetrics::register(&reg, "igern_test");
        let mut s = TickSample {
            elapsed: Duration::from_micros(5),
            ..TickSample::default()
        };
        s.ops.nn = 2;
        s.ops.desyncs = 1;
        pm.record_sample(&s);
        pm.record_sample(&TickSample {
            skipped: true,
            ..TickSample::default()
        });
        assert_eq!(pm.queries_evaluated_total.get(), 1);
        assert_eq!(pm.queries_skipped_total.get(), 1);
        assert_eq!(pm.ops_nn_total.get(), 2);
        assert_eq!(pm.desync_total.get(), 1);
        assert_eq!(pm.query_eval_seconds.count(), 1);
        // Re-registering under the same prefix re-attaches, not duplicates.
        let before = reg.len();
        let pm2 = PipelineMetrics::register(&reg, "igern_test");
        assert_eq!(reg.len(), before);
        assert_eq!(pm2.ops_nn_total.get(), 2);
    }
}
