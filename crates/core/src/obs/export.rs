//! Registry exporters: Prometheus text exposition format and JSON.
//!
//! Both render the same stable snapshot (entries sorted by name, then
//! label set) so successive dumps of an unchanged registry are
//! byte-identical — which lets the CI smoke check diff round-trips.

use std::fmt::Write as _;

use super::{Entry, Instrument, MetricsRegistry};

/// Format an `f64` the way both exporters need it: integral values
/// without a fractional part (`144` not `144.0`), non-finite values as
/// Prometheus spellings (`+Inf`, `-Inf`, `NaN`).
fn fmt_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v > 0.0 { "+Inf" } else { "-Inf" }.to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        let s = format!("{v}");
        s
    }
}

/// Render `{k="v",...}` for a series, merging `extra` (e.g. `le`) after
/// the entry's own labels. Empty label sets render as nothing.
fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

pub(super) fn render_prometheus(entries: &[Entry]) -> String {
    let mut out = String::new();
    let mut last_typed: Option<&str> = None;
    for e in entries {
        // One TYPE line per metric name, before its first sample.
        if last_typed != Some(e.name.as_str()) {
            let kind = match e.instrument {
                Instrument::Counter(_) => "counter",
                Instrument::Gauge(_) => "gauge",
                Instrument::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
            last_typed = Some(e.name.as_str());
        }
        match &e.instrument {
            Instrument::Counter(c) => {
                let _ = writeln!(out, "{}{} {}", e.name, fmt_labels(&e.labels, None), c.get());
            }
            Instrument::Gauge(g) => {
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    fmt_labels(&e.labels, None),
                    fmt_f64(g.get())
                );
            }
            Instrument::Histogram(h) => {
                for (bound, cum) in h.cumulative_buckets() {
                    let le = fmt_f64(bound);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        fmt_labels(&e.labels, Some(("le", &le))),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    e.name,
                    fmt_labels(&e.labels, None),
                    fmt_f64(h.sum())
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    e.name,
                    fmt_labels(&e.labels, None),
                    h.count()
                );
            }
        }
    }
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON has no Inf/NaN literals; export them as null.
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&fmt_f64(v));
    } else {
        out.push_str("null");
    }
}

pub(super) fn render_json(entries: &[Entry]) -> String {
    let mut out = String::from("{\n  \"metrics\": [\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str("    {");
        out.push_str("\"name\": ");
        json_string(&mut out, &e.name);
        if !e.labels.is_empty() {
            out.push_str(", \"labels\": {");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                json_string(&mut out, k);
                out.push_str(": ");
                json_string(&mut out, v);
            }
            out.push('}');
        }
        match &e.instrument {
            Instrument::Counter(c) => {
                let _ = write!(out, ", \"type\": \"counter\", \"value\": {}", c.get());
            }
            Instrument::Gauge(g) => {
                out.push_str(", \"type\": \"gauge\", \"value\": ");
                json_f64(&mut out, g.get());
            }
            Instrument::Histogram(h) => {
                let _ = write!(
                    out,
                    ", \"type\": \"histogram\", \"count\": {}, \"sum\": ",
                    h.count()
                );
                json_f64(&mut out, h.sum());
                out.push_str(", \"buckets\": [");
                for (j, (bound, cum)) in h.cumulative_buckets().iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    out.push_str("{\"le\": ");
                    json_f64(&mut out, *bound);
                    let _ = write!(out, ", \"count\": {cum}}}");
                }
                out.push(']');
            }
        }
        out.push('}');
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

impl MetricsRegistry {
    /// Render every series in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.sorted_entries())
    }

    /// Render every series as a JSON document (`{"metrics": [...]}`;
    /// non-finite values become `null`).
    pub fn render_json(&self) -> String {
        render_json(&self.sorted_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("igern_ticks_total").add(3);
        reg.gauge_labeled("igern_shard_size", &[("worker", "0")])
            .set(17.0);
        reg.gauge_labeled("igern_shard_size", &[("worker", "1")])
            .set(12.5);
        let h = reg.histogram("igern_tick_seconds", &[0.001, 0.01]);
        h.observe(0.0005);
        h.observe(0.02);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = demo_registry().render_prometheus();
        let expected = "\
# TYPE igern_shard_size gauge
igern_shard_size{worker=\"0\"} 17
igern_shard_size{worker=\"1\"} 12.5
# TYPE igern_tick_seconds histogram
igern_tick_seconds_bucket{le=\"0.001\"} 1
igern_tick_seconds_bucket{le=\"0.01\"} 1
igern_tick_seconds_bucket{le=\"+Inf\"} 2
igern_tick_seconds_sum 0.0205
igern_tick_seconds_count 2
# TYPE igern_ticks_total counter
igern_ticks_total 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn json_shape_and_roundtrip() {
        let reg = demo_registry();
        let json = reg.render_json();
        // Parses with the in-repo parser …
        let v = crate::obs::jsontext::parse(&json).expect("valid json");
        let metrics = v.get("metrics").and_then(|m| m.as_array()).expect("array");
        assert_eq!(metrics.len(), 4);
        let counter = metrics
            .iter()
            .find(|m| m.get("name").and_then(|n| n.as_str()) == Some("igern_ticks_total"))
            .expect("counter present");
        assert_eq!(counter.get("value").and_then(|v| v.as_f64()), Some(3.0));
        // … and successive renders of an unchanged registry are identical.
        assert_eq!(json, reg.render_json());
    }

    #[test]
    fn non_finite_gauges_export_as_null_json_and_inf_prom() {
        let reg = MetricsRegistry::new();
        reg.gauge("g").set(f64::INFINITY);
        assert!(reg.render_prometheus().contains("g +Inf"));
        let json = reg.render_json();
        assert!(json.contains("\"value\": null"));
        crate::obs::jsontext::parse(&json).expect("null is valid json");
    }

    #[test]
    fn prometheus_output_passes_own_lint() {
        let text = demo_registry().render_prometheus();
        let report = crate::obs::promtext::lint(&text).expect("lint passes");
        assert_eq!(report.families, 3);
        assert_eq!(report.samples, 8);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter_labeled("c", &[("path", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"c{path="a\"b\\c"} 1"#), "{text}");
        let json = reg.render_json();
        crate::obs::jsontext::parse(&json).expect("escaped json parses");
    }
}
