//! The shared spatial store: grid indexes fed by the update stream.
//!
//! Monochromatic queries run on one grid holding every object. Bichromatic
//! queries need the two types separately ("a grid data structure G is
//! maintained where each cell keeps track of the moving objects within its
//! boundaries", §4 — we keep twin grids with identical cell geometry so a
//! cell id means the same region in both).

use std::sync::Arc;

use igern_geom::{Aabb, Point};
use igern_grid::{CellSet, Grid, ObjectId};

use crate::netspace::{NetView, NetworkSpace};
use crate::types::ObjectKind;

/// Grid indexes over the moving-object population.
///
/// The store keeps a per-tick *update journal* on top of the grids'
/// dirty-cell tracking: which objects were touched (inserted, removed, or
/// moved) since the last [`SpatialStore::drain_dirty`], and — via the
/// grids — which cells of each index went dirty. The processor routes
/// query re-evaluation off this journal.
#[derive(Debug, Clone)]
pub struct SpatialStore {
    /// All objects, regardless of kind (monochromatic queries).
    all: Grid,
    /// Kind-A objects only.
    a: Grid,
    /// Kind-B objects only.
    b: Grid,
    kinds: Vec<ObjectKind>,
    /// Objects touched since the last drain (may repeat an id that was
    /// updated twice in a tick).
    moved: Vec<ObjectId>,
    /// Snapped-position companion for network-distance queries; present
    /// iff a road network is attached (see [`SpatialStore::set_network`]).
    net: Option<NetView>,
}

impl SpatialStore {
    /// Create a store with `n × n` cells over `space`; `kinds[i]` is the
    /// kind of object `i` (pass all-`A` for monochromatic workloads).
    pub fn new(space: Aabb, n: usize, kinds: Vec<ObjectKind>) -> Self {
        SpatialStore {
            all: Grid::new(space, n),
            a: Grid::new(space, n),
            b: Grid::new(space, n),
            kinds,
            moved: Vec::new(),
            net: None,
        }
    }

    /// Attach a road network, enabling [`crate::types::DistanceMode::Network`]
    /// queries: every current and future object position is mirrored into
    /// a snapped-position [`NetView`] maintained alongside the raw grids.
    pub fn set_network(&mut self, space: Arc<NetworkSpace>) {
        let mut view = NetView::new(space, *self.all.space(), self.all.cells_per_side());
        for (id, p) in self.all.iter() {
            view.insert(id, p);
        }
        self.net = Some(view);
    }

    /// The attached road network, if any.
    #[inline]
    pub fn network(&self) -> Option<&Arc<NetworkSpace>> {
        self.net.as_ref().map(NetView::space)
    }

    /// The snapped-position companion view, if a network is attached.
    #[inline]
    pub fn net_view(&self) -> Option<&NetView> {
        self.net.as_ref()
    }

    /// Bulk-load initial positions; `positions[i]` is object `i`.
    ///
    /// # Panics
    /// Panics when `positions.len() != kinds.len()`.
    pub fn load(&mut self, positions: &[Point]) {
        assert_eq!(
            positions.len(),
            self.kinds.len(),
            "kinds/positions mismatch"
        );
        for (i, &p) in positions.iter().enumerate() {
            let id = ObjectId(i as u32);
            self.all.insert(id, p);
            match self.kinds[i] {
                ObjectKind::A => self.a.insert(id, p),
                ObjectKind::B => self.b.insert(id, p),
            }
            if let Some(v) = &mut self.net {
                v.insert(id, p);
            }
        }
    }

    /// Insert a new object at runtime (dynamic population). The id must
    /// be fresh; ids beyond the initial population extend the kind table.
    pub fn insert(&mut self, id: ObjectId, kind: ObjectKind, pos: Point) {
        if self.kinds.len() <= id.index() {
            // Extend with placeholder kinds; only `id`'s slot is meaningful
            // and it is set below. Placeholder slots are never read because
            // lookups go through the grids, which only know live ids.
            self.kinds.resize(id.index() + 1, ObjectKind::A);
        }
        self.kinds[id.index()] = kind;
        self.all.insert(id, pos);
        match kind {
            ObjectKind::A => self.a.insert(id, pos),
            ObjectKind::B => self.b.insert(id, pos),
        }
        if let Some(v) = &mut self.net {
            v.insert(id, pos);
        }
        self.moved.push(id);
    }

    /// Remove an object at runtime, returning its last position.
    pub fn remove(&mut self, id: ObjectId) -> Option<Point> {
        let pos = self.all.remove(id)?;
        match self.kinds[id.index()] {
            ObjectKind::A => self.a.remove(id),
            ObjectKind::B => self.b.remove(id),
        };
        if let Some(v) = &mut self.net {
            v.remove(id);
        }
        self.moved.push(id);
        Some(pos)
    }

    /// Apply one position update.
    pub fn apply(&mut self, id: ObjectId, pos: Point) {
        self.all.update(id, pos);
        match self.kinds[id.index()] {
            ObjectKind::A => self.a.update(id, pos),
            ObjectKind::B => self.b.update(id, pos),
        };
        if let Some(v) = &mut self.net {
            v.apply(id, pos);
        }
        self.moved.push(id);
    }

    /// Apply one tick's position updates in a single pass: each update's
    /// grid mutation, kind routing, and journal publication (moved list +
    /// dirty cells) happen together, with the moved list grown once up
    /// front instead of per update. Equivalent to calling
    /// [`SpatialStore::apply`] per element.
    pub fn apply_batch(&mut self, updates: &[(ObjectId, Point)]) {
        self.moved.reserve(updates.len());
        for &(id, pos) in updates {
            self.all.update(id, pos);
            match self.kinds[id.index()] {
                ObjectKind::A => self.a.update(id, pos),
                ObjectKind::B => self.b.update(id, pos),
            };
            if let Some(v) = &mut self.net {
                v.apply(id, pos);
            }
            self.moved.push(id);
        }
    }

    /// The all-objects grid.
    #[inline]
    pub fn all(&self) -> &Grid {
        &self.all
    }

    /// The kind-A grid.
    #[inline]
    pub fn grid_a(&self) -> &Grid {
        &self.a
    }

    /// The kind-B grid.
    #[inline]
    pub fn grid_b(&self) -> &Grid {
        &self.b
    }

    /// Kind of an object.
    #[inline]
    pub fn kind(&self, id: ObjectId) -> ObjectKind {
        self.kinds[id.index()]
    }

    /// Current position of an object (from the all-objects grid).
    #[inline]
    pub fn position(&self, id: ObjectId) -> Option<Point> {
        self.all.position(id)
    }

    /// Number of objects.
    #[inline]
    pub fn len(&self) -> usize {
        self.all.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.all.is_empty()
    }

    /// Cell changes recorded on the all-objects grid (Figure 6a metric).
    #[inline]
    pub fn cell_changes(&self) -> u64 {
        self.all.cell_changes()
    }

    /// Objects touched (inserted, removed, or moved) since the last
    /// [`SpatialStore::drain_dirty`]. May contain duplicates when an
    /// object was updated more than once.
    #[inline]
    pub fn moved(&self) -> &[ObjectId] {
        &self.moved
    }

    /// Dirty cells of the all-objects grid since the last drain. Every
    /// mutation touches the all grid, so this is a superset of the A and
    /// B dirty sets (the grids share cell geometry).
    #[inline]
    pub fn dirty_all(&self) -> &CellSet {
        self.all.dirty()
    }

    /// Dirty cells of the kind-A grid since the last drain.
    #[inline]
    pub fn dirty_a(&self) -> &CellSet {
        self.a.dirty()
    }

    /// Dirty cells of the kind-B grid since the last drain.
    #[inline]
    pub fn dirty_b(&self) -> &CellSet {
        self.b.dirty()
    }

    /// Epoch of the current journal: the number of drains so far.
    #[inline]
    pub fn dirty_epoch(&self) -> u64 {
        self.all.dirty_epoch()
    }

    /// Close out the current tick: clear the moved list and every grid's
    /// dirty set, and advance the epoch.
    pub fn drain_dirty(&mut self) {
        self.moved.clear();
        self.all.drain_dirty();
        self.a.drain_dirty();
        self.b.drain_dirty();
    }

    /// The data space.
    #[inline]
    pub fn space(&self) -> &Aabb {
        self.all.space()
    }

    /// Test-only fault injection: clear `id`'s position slot in every
    /// grid while leaving the cell buckets stale, producing exactly the
    /// bucket/position desync the search layer must survive. Returns
    /// whether the all-objects grid held the object.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        let hit = self.all.debug_force_desync(id);
        self.a.debug_force_desync(id);
        self.b.debug_force_desync(id);
        if let Some(v) = &mut self.net {
            v.debug_force_desync(id);
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpatialStore {
        let kinds = vec![ObjectKind::A, ObjectKind::A, ObjectKind::B];
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 4, kinds);
        s.load(&[
            Point::new(1.0, 1.0),
            Point::new(9.0, 9.0),
            Point::new(5.0, 5.0),
        ]);
        s
    }

    #[test]
    fn load_routes_by_kind() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert_eq!(s.grid_a().len(), 2);
        assert_eq!(s.grid_b().len(), 1);
        assert_eq!(s.kind(ObjectId(2)), ObjectKind::B);
        assert_eq!(s.position(ObjectId(2)), Some(Point::new(5.0, 5.0)));
        assert_eq!(s.grid_b().position(ObjectId(2)), Some(Point::new(5.0, 5.0)));
        assert_eq!(s.grid_a().position(ObjectId(2)), None);
    }

    #[test]
    fn apply_updates_both_grids() {
        let mut s = store();
        s.apply(ObjectId(0), Point::new(8.0, 1.0));
        assert_eq!(s.position(ObjectId(0)), Some(Point::new(8.0, 1.0)));
        assert_eq!(s.grid_a().position(ObjectId(0)), Some(Point::new(8.0, 1.0)));
        assert!(s.cell_changes() >= 1);
    }

    #[test]
    fn grids_share_cell_geometry() {
        let s = store();
        let p = Point::new(3.3, 7.7);
        assert_eq!(s.all().cell_of_point(p), s.grid_a().cell_of_point(p));
        assert_eq!(s.all().cell_of_point(p), s.grid_b().cell_of_point(p));
        assert_eq!(s.all().num_cells(), s.grid_b().num_cells());
    }

    #[test]
    fn dynamic_insert_and_remove() {
        let mut s = store();
        s.insert(ObjectId(10), ObjectKind::B, Point::new(2.0, 2.0));
        assert_eq!(s.len(), 4);
        assert_eq!(s.kind(ObjectId(10)), ObjectKind::B);
        assert_eq!(
            s.grid_b().position(ObjectId(10)),
            Some(Point::new(2.0, 2.0))
        );
        assert_eq!(s.remove(ObjectId(10)), Some(Point::new(2.0, 2.0)));
        assert_eq!(s.remove(ObjectId(10)), None);
        assert_eq!(s.len(), 3);
        assert_eq!(s.grid_b().position(ObjectId(10)), None);
        // Removing an A object clears both grids too.
        assert_eq!(s.remove(ObjectId(0)), Some(Point::new(1.0, 1.0)));
        assert_eq!(s.grid_a().position(ObjectId(0)), None);
    }

    #[test]
    fn journal_tracks_one_tick_of_updates() {
        let mut s = store();
        s.drain_dirty(); // discard the load's journal
        assert!(s.moved().is_empty());
        assert!(s.dirty_all().is_empty() && s.dirty_a().is_empty() && s.dirty_b().is_empty());
        let epoch = s.dirty_epoch();

        // An A move dirties the all and A grids but not B.
        s.apply(ObjectId(0), Point::new(8.0, 1.0));
        assert_eq!(s.moved(), &[ObjectId(0)]);
        assert!(!s.dirty_all().is_empty());
        assert!(!s.dirty_a().is_empty());
        assert!(s.dirty_b().is_empty());

        // A B move dirties B; the all-grid dirty set covers both.
        s.apply(ObjectId(2), Point::new(5.2, 5.2));
        assert!(!s.dirty_b().is_empty());
        let mut a_union_b = s.dirty_a().clone();
        a_union_b.union_with(s.dirty_b());
        let mut meet = a_union_b.clone();
        meet.intersect_with(s.dirty_all());
        assert_eq!(meet, a_union_b, "all-grid dirt must cover A ∪ B dirt");

        s.drain_dirty();
        assert_eq!(s.dirty_epoch(), epoch + 1);
        assert!(s.moved().is_empty());
        assert!(s.dirty_all().is_empty());

        // Insert and remove are journaled too.
        s.insert(ObjectId(10), ObjectKind::B, Point::new(2.0, 2.0));
        s.remove(ObjectId(10));
        assert_eq!(s.moved(), &[ObjectId(10), ObjectId(10)]);
        assert!(s
            .dirty_b()
            .contains(s.all().cell_of_point(Point::new(2.0, 2.0))));
    }

    #[test]
    #[should_panic(expected = "kinds/positions mismatch")]
    fn load_length_checked() {
        let mut s = SpatialStore::new(Aabb::unit(), 2, vec![ObjectKind::A]);
        s.load(&[Point::new(0.1, 0.1), Point::new(0.2, 0.2)]);
    }
}
