//! Brute-force reference oracles.
//!
//! Direct transcriptions of the RNN definitions (§1), quadratic in the
//! object count. Every continuous algorithm in this crate is tested for
//! exact agreement with these at every tick.

use igern_geom::Point;
use igern_grid::ObjectId;

use crate::netspace::{NetScratch, NetworkSpace};

/// Monochromatic RNN by definition: `o` is an RNN of `q` iff no other
/// object `o'` satisfies `dist(o, o') < dist(o, q)`.
///
/// `q_id` identifies the query object itself inside `objects` (it is never
/// an answer and never blocks one, since `dist(o, q) < dist(o, q)` is
/// false). The result is sorted by id.
pub fn mono_rnn(objects: &[(ObjectId, Point)], q: Point, q_id: Option<ObjectId>) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for &(id, pos) in objects {
        if Some(id) == q_id {
            continue;
        }
        let d_q = pos.dist_sq(q);
        let blocked = objects
            .iter()
            .any(|&(oid, opos)| oid != id && Some(oid) != q_id && pos.dist_sq(opos) < d_q);
        if !blocked {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Bichromatic RNN by definition: `o_B` is an RNN of `q_A` iff no A-object
/// `o_A` satisfies `dist(o_B, o_A) < dist(o_B, q_A)`.
///
/// `q_id` identifies the query inside `a_objects` (excluded from the
/// blocking test — its distance equals the query distance anyway). The
/// result is sorted by id.
pub fn bi_rnn(
    a_objects: &[(ObjectId, Point)],
    b_objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for &(id, pos) in b_objects {
        let d_q = pos.dist_sq(q);
        let blocked = a_objects
            .iter()
            .any(|&(aid, apos)| Some(aid) != q_id && pos.dist_sq(apos) < d_q);
        if !blocked {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Monochromatic reverse k-nearest neighbors by definition: `o` is an
/// RkNN of `q` iff fewer than `k` other objects lie strictly closer to
/// `o` than `q` does (i.e. `q` is among `o`'s `k` nearest). `k = 1`
/// coincides with [`mono_rnn`]. Result sorted by id.
pub fn mono_rknn(
    objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
    k: usize,
) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for &(id, pos) in objects {
        if Some(id) == q_id {
            continue;
        }
        let d_q = pos.dist_sq(q);
        let closer = objects
            .iter()
            .filter(|&&(oid, opos)| oid != id && Some(oid) != q_id && pos.dist_sq(opos) < d_q)
            .count();
        if closer < k {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Bichromatic reverse k-nearest neighbors by definition: `o_B` is an
/// RkNN of `q_A` iff fewer than `k` A-objects lie strictly closer to
/// `o_B` than `q_A` does. `k = 1` coincides with [`bi_rnn`]. Result
/// sorted by id.
pub fn bi_rknn(
    a_objects: &[(ObjectId, Point)],
    b_objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
    k: usize,
) -> Vec<ObjectId> {
    let mut out = Vec::new();
    for &(id, pos) in b_objects {
        let d_q = pos.dist_sq(q);
        let closer = a_objects
            .iter()
            .filter(|&&(aid, apos)| Some(aid) != q_id && pos.dist_sq(apos) < d_q)
            .count();
        if closer < k {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Monochromatic RkNN under network distance, by definition: every
/// position is snapped onto the network and `o` answers iff fewer than
/// `k` other objects lie strictly closer to `o` (in shortest-path
/// distance) than `q` does. Quadratic, no pruning — the gate the
/// network monitors are held to. Distances use the same fixed argument
/// orientation as the monitors (query first, candidate first for
/// blocking), so agreement is bit-exact. Result sorted by id.
pub fn mono_rknn_net(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
    k: usize,
) -> Vec<ObjectId> {
    let sq = ns.snap(q);
    let snapped: Vec<_> = objects.iter().map(|&(id, p)| (id, ns.snap(p))).collect();
    let mut out = Vec::new();
    for &(id, so) in &snapped {
        if Some(id) == q_id {
            continue;
        }
        let d_q = ns.dist(scratch, &sq, &so);
        let mut closer = 0usize;
        for &(oid, sp) in &snapped {
            if oid == id || Some(oid) == q_id {
                continue;
            }
            if ns.dist(scratch, &so, &sp) < d_q {
                closer += 1;
            }
        }
        if closer < k {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Monochromatic network RNN: [`mono_rknn_net`] with `k = 1`.
pub fn mono_rnn_net(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
) -> Vec<ObjectId> {
    mono_rknn_net(ns, scratch, objects, q, q_id, 1)
}

/// Bichromatic RkNN under network distance: `o_B` answers iff fewer
/// than `k` A-objects lie strictly closer to it (in shortest-path
/// distance) than `q_A` does. Result sorted by id.
pub fn bi_rknn_net(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    a_objects: &[(ObjectId, Point)],
    b_objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
    k: usize,
) -> Vec<ObjectId> {
    let sq = ns.snap(q);
    let a_snapped: Vec<_> = a_objects.iter().map(|&(id, p)| (id, ns.snap(p))).collect();
    let mut out = Vec::new();
    for &(id, p) in b_objects {
        let so = ns.snap(p);
        let d_q = ns.dist(scratch, &sq, &so);
        let mut closer = 0usize;
        for &(aid, sa) in &a_snapped {
            if Some(aid) == q_id {
                continue;
            }
            if ns.dist(scratch, &so, &sa) < d_q {
                closer += 1;
            }
        }
        if closer < k {
            out.push(id);
        }
    }
    out.sort_unstable();
    out
}

/// Bichromatic network RNN: [`bi_rknn_net`] with `k = 1`.
pub fn bi_rnn_net(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    a_objects: &[(ObjectId, Point)],
    b_objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
) -> Vec<ObjectId> {
    bi_rknn_net(ns, scratch, a_objects, b_objects, q, q_id, 1)
}

/// k-nearest-neighbors under network distance: the `k` objects with the
/// smallest shortest-path distance to `q`, ties broken by object id.
/// Result sorted by id.
pub fn knn_net(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    objects: &[(ObjectId, Point)],
    q: Point,
    q_id: Option<ObjectId>,
    k: usize,
) -> Vec<ObjectId> {
    let sq = ns.snap(q);
    let mut dists: Vec<(f64, ObjectId)> = objects
        .iter()
        .filter(|&&(id, _)| Some(id) != q_id)
        .map(|&(id, p)| (ns.dist(scratch, &sq, &ns.snap(p)), id))
        .collect();
    dists.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    dists.truncate(k);
    let mut out: Vec<ObjectId> = dists.into_iter().map(|(_, id)| id).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: u32, x: f64, y: f64) -> (ObjectId, Point) {
        (ObjectId(id), Point::new(x, y))
    }

    #[test]
    fn mono_basic() {
        // q at origin. o0 at (1,0) has q as its NN (o1 is 2 away): RNN.
        // o1 at (3,0) has o0 at distance 2 < 3: not an RNN.
        let objs = [obj(0, 1.0, 0.0), obj(1, 3.0, 0.0)];
        assert_eq!(mono_rnn(&objs, Point::ORIGIN, None), vec![ObjectId(0)]);
    }

    #[test]
    fn mono_at_most_six_answers() {
        // The classic theorem: monochromatic RNN answers number ≤ 6.
        // Stress it on rings of objects around q.
        let mut state = 3u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for _ in 0..20 {
            let objs: Vec<(ObjectId, Point)> = (0..60)
                .map(|i| (ObjectId(i), Point::new(rnd(), rnd())))
                .collect();
            let q = Point::new(rnd(), rnd());
            let ans = mono_rnn(&objs, q, None);
            assert!(ans.len() <= 6, "got {} RNNs", ans.len());
        }
    }

    #[test]
    fn mono_query_object_excluded() {
        // The query object itself is in the set; it must neither appear in
        // the answer nor block others.
        let objs = [obj(9, 0.0, 0.0), obj(0, 1.0, 0.0)];
        let ans = mono_rnn(&objs, Point::ORIGIN, Some(ObjectId(9)));
        assert_eq!(ans, vec![ObjectId(0)]);
    }

    #[test]
    fn mono_empty_and_singleton() {
        assert!(mono_rnn(&[], Point::ORIGIN, None).is_empty());
        let one = [obj(0, 5.0, 5.0)];
        assert_eq!(mono_rnn(&one, Point::ORIGIN, None), vec![ObjectId(0)]);
    }

    #[test]
    fn mono_ties_favor_the_query() {
        // o0 equidistant from q and o1: "dist < dist" is strict, so o0 is
        // still an RNN.
        let objs = [obj(0, 1.0, 0.0), obj(1, 2.0, 0.0)];
        let ans = mono_rnn(&objs, Point::ORIGIN, None);
        assert!(ans.contains(&ObjectId(0)));
    }

    #[test]
    fn bi_basic() {
        // q_A at origin; another A at (4,0).
        // b0 at (1,0): nearest A is q → RNN. b1 at (3.5,0): nearest A is
        // the other one → not.
        let a = [obj(0, 4.0, 0.0)];
        let b = [obj(10, 1.0, 0.0), obj(11, 3.5, 0.0)];
        assert_eq!(bi_rnn(&a, &b, Point::ORIGIN, None), vec![ObjectId(10)]);
    }

    #[test]
    fn bi_can_exceed_six_answers() {
        // With no other A objects, every B object is an RNN — the count is
        // unbounded, unlike the monochromatic case.
        let b: Vec<(ObjectId, Point)> = (0..10)
            .map(|i| (ObjectId(i), Point::new(i as f64, 2.0)))
            .collect();
        let ans = bi_rnn(&[], &b, Point::ORIGIN, None);
        assert_eq!(ans.len(), 10);
    }

    #[test]
    fn mono_rknn_k1_equals_rnn() {
        let objs = [obj(0, 1.0, 0.0), obj(1, 3.0, 0.0), obj(2, 0.0, 4.0)];
        assert_eq!(
            mono_rknn(&objs, Point::ORIGIN, None, 1),
            mono_rnn(&objs, Point::ORIGIN, None)
        );
    }

    #[test]
    fn mono_rknn_is_monotone_in_k() {
        // Growing k can only grow the answer set, up to all objects.
        let objs = [
            obj(0, 1.0, 0.0),
            obj(1, 1.5, 0.0),
            obj(2, 2.0, 0.0),
            obj(3, 9.0, 9.0),
        ];
        let mut prev = Vec::new();
        for k in 1..=4 {
            let ans = mono_rknn(&objs, Point::ORIGIN, None, k);
            for id in &prev {
                assert!(ans.contains(id), "answers must be monotone in k");
            }
            prev = ans;
        }
        assert_eq!(prev.len(), 4, "k = n admits everything");
    }

    #[test]
    fn bi_rknn_k1_equals_rnn() {
        let a = [obj(0, 4.0, 0.0)];
        let b = [obj(10, 1.0, 0.0), obj(11, 3.5, 0.0)];
        assert_eq!(
            bi_rknn(&a, &b, Point::ORIGIN, None, 1),
            bi_rnn(&a, &b, Point::ORIGIN, None)
        );
        // With k = 2 the blocked object is admitted (only one closer A).
        assert_eq!(bi_rknn(&a, &b, Point::ORIGIN, None, 2).len(), 2);
    }

    /// Two parallel roads with a single connecting rung at x = 0: points
    /// that are Euclidean-close across the gap are network-far.
    fn two_roads() -> NetworkSpace {
        use igern_geom::Aabb;
        use igern_mobgen::{RoadClass, RoadNetwork};
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(100.0, 0.0),
            Point::new(0.0, 4.0),
            Point::new(100.0, 4.0),
        ];
        let segs = [
            (0, 1, RoadClass::Main),
            (2, 3, RoadClass::Main),
            (0, 2, RoadClass::Side),
        ];
        let net = RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 100.0, 4.0));
        NetworkSpace::from_network(&net)
    }

    #[test]
    fn mono_net_differs_from_euclidean_across_a_gap() {
        let ns = two_roads();
        let mut s = NetScratch::default();
        // q on the bottom road; o0 across the gap (euclidean-near,
        // network-far), o1 down the road (euclidean-far, network-near).
        let q = Point::new(50.0, 0.0);
        let objs = [obj(0, 50.0, 4.0), obj(1, 70.0, 0.0)];
        let euc = mono_rnn(&objs, q, None);
        let net = mono_rnn_net(&ns, &mut s, &objs, q, None);
        // Euclidean: o0 is 4 away (RNN of q); network: o0 is 104 away
        // from q but only 104 vs 20+... — o1's nearest is q either way.
        assert!(euc.contains(&ObjectId(0)));
        assert!(net.contains(&ObjectId(1)));
        // o0's network NN is o1? d(o0,o1) = 50+4+... — verify via knn.
        assert_eq!(knn_net(&ns, &mut s, &objs, q, None, 1), vec![ObjectId(1)]);
    }

    #[test]
    fn net_rknn_k1_equals_rnn_and_is_monotone() {
        let ns = two_roads();
        let mut s = NetScratch::default();
        let q = Point::new(10.0, 0.0);
        let objs = [
            obj(0, 5.0, 0.0),
            obj(1, 30.0, 0.0),
            obj(2, 10.0, 4.0),
            obj(3, 90.0, 4.0),
        ];
        assert_eq!(
            mono_rknn_net(&ns, &mut s, &objs, q, None, 1),
            mono_rnn_net(&ns, &mut s, &objs, q, None)
        );
        let mut prev = Vec::new();
        for k in 1..=4 {
            let ans = mono_rknn_net(&ns, &mut s, &objs, q, None, k);
            for id in &prev {
                assert!(ans.contains(id), "network RkNN must be monotone in k");
            }
            prev = ans;
        }
        assert_eq!(prev.len(), 4);
    }

    #[test]
    fn bi_net_k1_equals_rnn() {
        let ns = two_roads();
        let mut s = NetScratch::default();
        let q = Point::new(0.0, 0.0);
        let a = [obj(0, 60.0, 0.0)];
        let b = [obj(10, 20.0, 0.0), obj(11, 55.0, 0.0)];
        assert_eq!(
            bi_rknn_net(&ns, &mut s, &a, &b, q, None, 1),
            bi_rnn_net(&ns, &mut s, &a, &b, q, None)
        );
        // b10 is nearer q (20 vs 40 to the other A): RNN. b11 nearer the
        // other A (5 vs 55): not.
        assert_eq!(bi_rnn_net(&ns, &mut s, &a, &b, q, None), vec![ObjectId(10)]);
    }

    #[test]
    fn bi_query_id_excluded_from_blocking() {
        // The query is stored among the A objects; its own record must not
        // block answers.
        let a = [obj(0, 0.0, 0.0), obj(1, 9.0, 9.0)];
        let b = [obj(10, 1.0, 0.0)];
        let ans = bi_rnn(&a, &b, Point::ORIGIN, Some(ObjectId(0)));
        assert_eq!(ans, vec![ObjectId(10)]);
    }
}
