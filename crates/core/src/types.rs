//! Shared vocabulary types.

/// Object type for bichromatic queries (paper §4): queries are of type A,
/// answers are of type B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// The query-side type.
    A,
    /// The data-side type.
    B,
}

impl ObjectKind {
    /// The opposite kind.
    #[inline]
    pub fn other(self) -> ObjectKind {
        match self {
            ObjectKind::A => ObjectKind::B,
            ObjectKind::B => ObjectKind::A,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn other_is_an_involution() {
        assert_eq!(ObjectKind::A.other(), ObjectKind::B);
        assert_eq!(ObjectKind::B.other(), ObjectKind::A);
        assert_eq!(ObjectKind::A.other().other(), ObjectKind::A);
    }
}
