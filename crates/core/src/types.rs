//! Shared vocabulary types.

/// Object type for bichromatic queries (paper §4): queries are of type A,
/// answers are of type B.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// The query-side type.
    A,
    /// The data-side type.
    B,
}

impl ObjectKind {
    /// The opposite kind.
    #[inline]
    pub fn other(self) -> ObjectKind {
        match self {
            ObjectKind::A => ObjectKind::B,
            ObjectKind::B => ObjectKind::A,
        }
    }
}

/// The distance metric a continuous query evaluates under.
///
/// `Euclidean` is the paper's original setting. `Network` measures
/// shortest-path distance over the road network attached to the store
/// (see `crate::netspace`); queries in this mode require
/// `SpatialStore::set_network` to have been called.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DistanceMode {
    /// Straight-line distance in the plane (the default).
    #[default]
    Euclidean,
    /// Shortest-path distance over the attached road network.
    Network,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_mode_defaults_to_euclidean() {
        assert_eq!(DistanceMode::default(), DistanceMode::Euclidean);
    }

    #[test]
    fn other_is_an_involution() {
        assert_eq!(ObjectKind::A.other(), ObjectKind::B);
        assert_eq!(ObjectKind::B.other(), ObjectKind::A);
        assert_eq!(ObjectKind::A.other().other(), ObjectKind::A);
    }
}
