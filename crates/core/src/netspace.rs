//! Road-network distance: the [`NetworkSpace`] evaluation substrate.
//!
//! The paper's continuous framework is distance-metric-agnostic; this
//! module supplies the graph metric. A [`NetworkSpace`] is an immutable
//! view of a `igern_mobgen::RoadNetwork` prepared for query evaluation:
//!
//! * **Snapping** — every object position is projected onto its nearest
//!   edge ([`NetworkSpace::snap`]), yielding a [`NetPos`] (edge id, the
//!   snapped point, and the arc offsets to both endpoints). A
//!   cell-bucketed edge index makes the nearest-edge search an expanding
//!   ring scan with an exact stop bound.
//! * **Shortest paths** — network distance between two snapped positions
//!   is the minimum over the direct same-edge walk and the four
//!   endpoint-to-endpoint route combinations, where node-to-node
//!   distances come from full single-source Dijkstra expansions weighted
//!   by *edge length* (not travel time). Expansions are memoized per
//!   anchor node in the evaluation lane's [`NetScratch`]; the graph is
//!   static, so a memo entry never invalidates and the steady-state tick
//!   is allocation-free once the working set of anchor nodes is warm.
//! * **Admissible pruning** — edge weights are Euclidean segment
//!   lengths, so the straight-line distance between two snapped points
//!   never exceeds their network distance. [`net_lb`] deflates a
//!   computed Euclidean distance by a small relative slack to stay a
//!   sound lower bound under floating-point rounding; the grid/ring
//!   machinery prunes with it before any exact graph distance is paid.
//!
//! The [`NetView`] is the store-side companion: a grid over the *snapped*
//! positions (so Euclidean cell bounds are valid lower bounds for graph
//! distance) plus the per-object [`NetPos`] table, maintained
//! incrementally by `SpatialStore` whenever a network is attached.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

use igern_geom::{Aabb, Point, Segment};
use igern_grid::{Grid, ObjectId};
use igern_mobgen::RoadNetwork;

/// Relative slack applied when a floating-point Euclidean distance is
/// used as a lower bound for a network distance. Graph distances are
/// sums of edge lengths; accumulated rounding across a long path is far
/// below `1e-9` relative, so deflating the Euclidean side by that factor
/// keeps the bound admissible without giving up meaningful pruning.
const LB_SLACK: f64 = 1e-9;

/// Deflate a computed Euclidean distance into a sound lower bound for
/// the corresponding network distance (see module docs). Monotone, so
/// pruning comparisons stay consistent.
#[inline]
pub fn net_lb(d_euc: f64) -> f64 {
    d_euc * (1.0 - LB_SLACK)
}

/// A position projected onto the road network: the nearest edge, the
/// snapped point on it, and the arc distances to the edge's endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetPos {
    /// Id of the nearest edge (ties broken toward the lowest id).
    pub edge: u32,
    /// The projection of the raw position onto that edge's segment.
    pub point: Point,
    /// Arc distance from the snapped point to the edge's `a` endpoint.
    pub d_a: f64,
    /// Arc distance from the snapped point to the edge's `b` endpoint.
    pub d_b: f64,
}

/// One edge of the prepared graph (lengths cached, endpoints compact).
#[derive(Debug, Clone, Copy)]
struct NetEdge {
    a: u32,
    b: u32,
    len: f64,
    seg: Segment,
}

/// An immutable road network prepared for network-distance evaluation:
/// length-weighted adjacency plus a cell-bucketed edge index for
/// nearest-edge snapping. Shared across execution lanes behind an `Arc`;
/// all mutable state (Dijkstra memos, heaps) lives in [`NetScratch`].
#[derive(Debug)]
pub struct NetworkSpace {
    nodes: Vec<Point>,
    edges: Vec<NetEdge>,
    /// CSR adjacency: `adj[adj_off[n]..adj_off[n + 1]]` is node `n`'s
    /// incident `(edge, opposite node)` list.
    adj_off: Vec<u32>,
    adj: Vec<(u32, u32)>,
    space: Aabb,
    /// Edge-index bucket grid: `side × side` cells over `space`.
    side: usize,
    cell_w: f64,
    cell_h: f64,
    buckets: Vec<Vec<u32>>,
}

impl NetworkSpace {
    /// Prepare `net` for evaluation. Edge weights are the segments'
    /// Euclidean lengths — the invariant behind [`net_lb`].
    ///
    /// # Panics
    /// Panics when the network has no edges (nothing to snap to).
    pub fn from_network(net: &RoadNetwork) -> Self {
        assert!(net.num_edges() > 0, "network must have at least one edge");
        let nodes: Vec<Point> = (0..net.num_nodes()).map(|n| net.node(n)).collect();
        let edges: Vec<NetEdge> = (0..net.num_edges())
            .map(|e| {
                let edge = net.edge(e);
                NetEdge {
                    a: edge.a as u32,
                    b: edge.b as u32,
                    len: edge.len,
                    seg: Segment::new(nodes[edge.a], nodes[edge.b]),
                }
            })
            .collect();
        let mut adj_off = vec![0u32; nodes.len() + 1];
        for e in &edges {
            adj_off[e.a as usize + 1] += 1;
            adj_off[e.b as usize + 1] += 1;
        }
        for i in 0..nodes.len() {
            adj_off[i + 1] += adj_off[i];
        }
        let mut cursor = adj_off.clone();
        let mut adj = vec![(0u32, 0u32); edges.len() * 2];
        for (i, e) in edges.iter().enumerate() {
            adj[cursor[e.a as usize] as usize] = (i as u32, e.b);
            cursor[e.a as usize] += 1;
            adj[cursor[e.b as usize] as usize] = (i as u32, e.a);
            cursor[e.b as usize] += 1;
        }

        let space = *net.space();
        // Bucket resolution ~ sqrt(edge count): keeps per-bucket lists
        // short without blowing up empty-ring scans on sparse networks.
        let side = ((edges.len() as f64).sqrt().ceil() as usize).clamp(1, 128);
        let cell_w = (space.max.x - space.min.x) / side as f64;
        let cell_h = (space.max.y - space.min.y) / side as f64;
        let mut ns = NetworkSpace {
            nodes,
            edges,
            adj_off,
            adj,
            space,
            side,
            cell_w,
            cell_h,
            buckets: vec![Vec::new(); side * side],
        };
        for i in 0..ns.edges.len() {
            let seg = ns.edges[i].seg;
            let (x0, y0) = ns.bucket_of(Point::new(seg.a.x.min(seg.b.x), seg.a.y.min(seg.b.y)));
            let (x1, y1) = ns.bucket_of(Point::new(seg.a.x.max(seg.b.x), seg.a.y.max(seg.b.y)));
            for by in y0..=y1 {
                for bx in x0..=x1 {
                    ns.buckets[by * ns.side + bx].push(i as u32);
                }
            }
        }
        ns
    }

    /// Number of graph nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of graph edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The embedded data space.
    #[inline]
    pub fn space(&self) -> &Aabb {
        &self.space
    }

    /// Endpoint node positions of edge `e`.
    #[inline]
    pub fn edge_segment(&self, e: u32) -> Segment {
        self.edges[e as usize].seg
    }

    /// Bucket coordinates of `p`, clamped into the grid.
    fn bucket_of(&self, p: Point) -> (usize, usize) {
        let fx = ((p.x - self.space.min.x) / self.cell_w).floor();
        let fy = ((p.y - self.space.min.y) / self.cell_h).floor();
        let bx = (fx.max(0.0) as usize).min(self.side - 1);
        let by = (fy.max(0.0) as usize).min(self.side - 1);
        (bx, by)
    }

    /// Project `p` onto its nearest edge (lowest edge id on exact ties).
    ///
    /// Expanding Chebyshev-ring scan over the edge buckets. The stop
    /// bound is exact: a ring-`r` cell is at least `(r − 1) ·
    /// min(cell_w, cell_h)` away from `p` (measured via `p`'s clamped
    /// projection into the space, which never overestimates), so once a
    /// best edge is closer than that, no farther ring can improve it.
    pub fn snap(&self, p: Point) -> NetPos {
        let (bx, by) = self.bucket_of(p);
        let min_ext = self.cell_w.min(self.cell_h);
        let side = self.side as isize;
        let (bxi, byi) = (bx as isize, by as isize);
        let max_r = bxi.max(side - 1 - bxi).max(byi.max(side - 1 - byi)).max(0) as usize;
        let mut best_d = f64::INFINITY;
        let mut best_e = u32::MAX;
        for r in 0..=max_r {
            if best_e != u32::MAX && (r as f64 - 1.0) * min_ext > best_d {
                break;
            }
            let ri = r as isize;
            let mut visit = |cx: isize, cy: isize| {
                if cx < 0 || cy < 0 || cx >= side || cy >= side {
                    return;
                }
                for &e in &self.buckets[cy as usize * self.side + cx as usize] {
                    let d = self.edges[e as usize].seg.dist(p);
                    if d < best_d || (d == best_d && e < best_e) {
                        best_d = d;
                        best_e = e;
                    }
                }
            };
            if r == 0 {
                visit(bxi, byi);
            } else {
                for cx in (bxi - ri)..=(bxi + ri) {
                    visit(cx, byi - ri);
                    visit(cx, byi + ri);
                }
                for cy in (byi - ri + 1)..=(byi + ri - 1) {
                    visit(bxi - ri, cy);
                    visit(bxi + ri, cy);
                }
            }
        }
        let edge = &self.edges[best_e as usize];
        let t = edge.seg.project(p);
        NetPos {
            edge: best_e,
            point: edge.seg.at(t),
            d_a: t * edge.len,
            d_b: (1.0 - t) * edge.len,
        }
    }

    /// Node `n`'s `(edge, opposite node)` adjacency list.
    #[inline]
    fn incident(&self, n: usize) -> &[(u32, u32)] {
        &self.adj[self.adj_off[n] as usize..self.adj_off[n + 1] as usize]
    }

    /// Ensure `scratch` holds the full single-source distance map from
    /// node `n` (length-weighted Dijkstra; unreachable nodes stay `∞`).
    fn ensure_map(&self, scratch: &mut NetScratch, n: usize) {
        if scratch.maps.len() < self.nodes.len() {
            scratch.maps.resize_with(self.nodes.len(), || None);
        }
        if scratch.maps[n].is_some() {
            return;
        }
        let mut d = vec![f64::INFINITY; self.nodes.len()].into_boxed_slice();
        d[n] = 0.0;
        scratch.heap.clear();
        scratch.heap.push(HeapItem {
            cost: 0.0,
            node: n as u32,
        });
        while let Some(HeapItem { cost, node }) = scratch.heap.pop() {
            let u = node as usize;
            if cost > d[u] {
                continue;
            }
            for &(e, v) in self.incident(u) {
                let nd = cost + self.edges[e as usize].len;
                if nd < d[v as usize] {
                    d[v as usize] = nd;
                    scratch.heap.push(HeapItem { cost: nd, node: v });
                }
            }
        }
        scratch.maps[n] = Some(d);
    }

    /// Memoized single-source network distances from node `n` (test and
    /// oracle seam; [`NetworkSpace::dist`] is the evaluation entry).
    pub fn node_dists<'a>(&self, scratch: &'a mut NetScratch, n: usize) -> &'a [f64] {
        self.ensure_map(scratch, n);
        scratch.maps[n].as_deref().unwrap()
    }

    /// Exact network distance between two snapped positions: the minimum
    /// of the direct same-edge walk (when applicable) and the four
    /// endpoint route combinations. `∞` when `p` and `q` lie in
    /// different components.
    ///
    /// The evaluation order is fixed, so for a given argument order the
    /// result is bit-reproducible; monitors and oracles call it with the
    /// same orientation (query first for query distances, candidate
    /// first for blocking distances) and therefore compare identical
    /// floats.
    pub fn dist(&self, scratch: &mut NetScratch, p: &NetPos, q: &NetPos) -> f64 {
        let pe = self.edges[p.edge as usize];
        let qe = self.edges[q.edge as usize];
        let mut best = if p.edge == q.edge {
            (p.d_a - q.d_a).abs()
        } else {
            f64::INFINITY
        };
        self.ensure_map(scratch, pe.a as usize);
        self.ensure_map(scratch, pe.b as usize);
        for (dp, src) in [(p.d_a, pe.a), (p.d_b, pe.b)] {
            let map = scratch.maps[src as usize].as_deref().unwrap();
            for (dq, dst) in [(q.d_a, qe.a), (q.d_b, qe.b)] {
                let d = dp + map[dst as usize] + dq;
                if d < best {
                    best = d;
                }
            }
        }
        best
    }
}

/// Min-heap entry for the Dijkstra expansion (ties broken by node id so
/// the pop order — though not the resulting distances — is fixed too).
#[derive(Debug, Clone, Copy)]
struct HeapItem {
    cost: f64,
    node: u32,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the cheapest node.
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Per-lane mutable state for network-distance evaluation: the memoized
/// single-source Dijkstra maps (keyed by anchor node, never invalidated
/// — the graph is static) and the reusable expansion heap. Lives inside
/// `EvalScratch`; a warm scratch makes network ticks allocation-free.
#[derive(Debug, Default)]
pub struct NetScratch {
    maps: Vec<Option<Box<[f64]>>>,
    heap: BinaryHeap<HeapItem>,
    /// Top-k staging for the network kNN monitor.
    pub(crate) knn: Vec<(f64, ObjectId)>,
}

impl NetScratch {
    /// Number of anchor nodes whose expansion is currently memoized.
    pub fn memoized(&self) -> usize {
        self.maps.iter().filter(|m| m.is_some()).count()
    }
}

/// The store-side network companion: a grid over *snapped* object
/// positions (valid substrate for Euclidean lower-bound pruning) plus
/// the per-object [`NetPos`] table. Maintained by `SpatialStore`
/// alongside its raw grids whenever a network is attached.
#[derive(Debug, Clone)]
pub struct NetView {
    space: Arc<NetworkSpace>,
    grid: Grid,
    pos: Vec<Option<NetPos>>,
}

impl NetView {
    /// An empty view over `space`, with grid geometry matching the
    /// store's (`n × n` cells over `bounds`).
    pub fn new(space: Arc<NetworkSpace>, bounds: Aabb, n: usize) -> Self {
        NetView {
            space,
            grid: Grid::new(bounds, n),
            pos: Vec::new(),
        }
    }

    /// The prepared network.
    #[inline]
    pub fn space(&self) -> &Arc<NetworkSpace> {
        &self.space
    }

    /// The grid over snapped positions.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The snapped position of a live object. `None` for unknown ids;
    /// callers pairing this with a bucket scan must treat a miss as a
    /// desync (skip and count), exactly like the raw grids.
    #[inline]
    pub fn net_pos(&self, id: ObjectId) -> Option<NetPos> {
        self.pos.get(id.index()).copied().flatten()
    }

    fn set_pos(&mut self, id: ObjectId, np: NetPos) {
        if self.pos.len() <= id.index() {
            self.pos.resize(id.index() + 1, None);
        }
        self.pos[id.index()] = Some(np);
    }

    /// Mirror a store insert: snap and index the new object.
    pub fn insert(&mut self, id: ObjectId, raw: Point) {
        let np = self.space.snap(raw);
        self.grid.insert(id, np.point);
        self.set_pos(id, np);
    }

    /// Mirror a store position update.
    pub fn apply(&mut self, id: ObjectId, raw: Point) {
        let np = self.space.snap(raw);
        self.grid.update(id, np.point);
        self.set_pos(id, np);
    }

    /// Mirror a store remove.
    pub fn remove(&mut self, id: ObjectId) {
        self.grid.remove(id);
        if let Some(slot) = self.pos.get_mut(id.index()) {
            *slot = None;
        }
    }

    /// Mirror the store's desync fault injection (position slot cleared,
    /// bucket left stale) so network searches face the same corruption
    /// the Euclidean ones do.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        self.grid.debug_force_desync(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_mobgen::RoadClass;

    /// A 2×1 ladder: nodes 0-1-2 along the bottom, 3-4-5 along the top.
    fn ladder() -> RoadNetwork {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(20.0, 0.0),
            Point::new(0.0, 10.0),
            Point::new(10.0, 10.0),
            Point::new(20.0, 10.0),
        ];
        let segs = [
            (0, 1, RoadClass::Main),
            (1, 2, RoadClass::Main),
            (3, 4, RoadClass::Main),
            (4, 5, RoadClass::Main),
            (0, 3, RoadClass::Side),
            (1, 4, RoadClass::Side),
            (2, 5, RoadClass::Side),
        ];
        RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 20.0, 10.0))
    }

    #[test]
    fn snap_projects_to_nearest_edge() {
        let ns = NetworkSpace::from_network(&ladder());
        // Near the middle of edge 0 (nodes 0–1).
        let np = ns.snap(Point::new(5.0, 1.0));
        assert_eq!(np.edge, 0);
        assert!((np.point.y - 0.0).abs() < 1e-12);
        assert!((np.d_a - 5.0).abs() < 1e-12);
        assert!((np.d_b - 5.0).abs() < 1e-12);
        // A node shared by several edges snaps to the lowest edge id.
        let at_node1 = ns.snap(Point::new(10.0, 0.0));
        assert_eq!(at_node1.edge, 0);
        assert!((at_node1.d_b - 0.0).abs() < 1e-12);
    }

    #[test]
    fn snap_matches_brute_force_everywhere() {
        let net = ladder();
        let ns = NetworkSpace::from_network(&net);
        let mut state = 11u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..500 {
            let p = Point::new(rnd() * 20.0, rnd() * 10.0);
            let np = ns.snap(p);
            let brute = (0..net.num_edges() as u32)
                .map(|e| (ns.edge_segment(e).dist(p), e))
                .min_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)))
                .unwrap();
            assert_eq!(np.edge, brute.1, "snap picked a non-nearest edge at {p:?}");
        }
    }

    #[test]
    fn dist_same_edge_and_round_trip() {
        let ns = NetworkSpace::from_network(&ladder());
        let mut s = NetScratch::default();
        let p = ns.snap(Point::new(2.0, 0.0));
        let q = ns.snap(Point::new(7.0, 0.0));
        assert!((ns.dist(&mut s, &p, &q) - 5.0).abs() < 1e-12);
        // Across the ladder: down-rung + along + nothing = 10 + 10 = 20
        // from (0,10) region to (0,0)… check a known route: (5,10) to
        // (5,0) goes via a rung: 5 + 10 + 5 = 20.
        let a = ns.snap(Point::new(5.0, 10.0));
        let b = ns.snap(Point::new(5.0, 0.0));
        assert!((ns.dist(&mut s, &a, &b) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dist_is_lower_bounded_by_euclidean() {
        let ns = NetworkSpace::from_network(&ladder());
        let mut s = NetScratch::default();
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for _ in 0..1000 {
            let p = ns.snap(Point::new(rnd() * 20.0, rnd() * 10.0));
            let q = ns.snap(Point::new(rnd() * 20.0, rnd() * 10.0));
            let d_net = ns.dist(&mut s, &p, &q);
            let d_euc = p.point.dist(q.point);
            assert!(
                net_lb(d_euc) <= d_net,
                "admissibility violated: euc {d_euc} net {d_net}"
            );
        }
    }

    #[test]
    fn disconnected_components_are_infinite() {
        let nodes = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(9.0, 9.0),
            Point::new(10.0, 9.0),
        ];
        let segs = [(0, 1, RoadClass::Main), (2, 3, RoadClass::Main)];
        let net = RoadNetwork::new(nodes, &segs, Aabb::from_coords(0.0, 0.0, 10.0, 10.0));
        let ns = NetworkSpace::from_network(&net);
        let mut s = NetScratch::default();
        let p = ns.snap(Point::new(0.5, 0.0));
        let q = ns.snap(Point::new(9.5, 9.0));
        assert_eq!(ns.dist(&mut s, &p, &q), f64::INFINITY);
        assert_eq!(ns.dist(&mut s, &p, &p), 0.0);
    }

    #[test]
    fn memoization_is_stable_and_reused() {
        let ns = NetworkSpace::from_network(&ladder());
        let mut s = NetScratch::default();
        let p = ns.snap(Point::new(2.0, 0.0));
        let q = ns.snap(Point::new(17.0, 10.0));
        let d1 = ns.dist(&mut s, &p, &q);
        let warm = s.memoized();
        let d2 = ns.dist(&mut s, &p, &q);
        assert_eq!(
            d1.to_bits(),
            d2.to_bits(),
            "memoized result must be bit-stable"
        );
        assert_eq!(s.memoized(), warm, "no new expansions on a warm repeat");
        // A fresh scratch agrees bit-for-bit too.
        let mut fresh = NetScratch::default();
        assert_eq!(ns.dist(&mut fresh, &p, &q).to_bits(), d1.to_bits());
    }

    #[test]
    fn netview_tracks_store_mutations() {
        let ns = Arc::new(NetworkSpace::from_network(&ladder()));
        let mut v = NetView::new(ns, Aabb::from_coords(0.0, 0.0, 20.0, 10.0), 4);
        v.insert(ObjectId(3), Point::new(5.0, 1.0));
        let np = v.net_pos(ObjectId(3)).unwrap();
        assert_eq!(np.edge, 0);
        assert_eq!(v.grid().position(ObjectId(3)), Some(np.point));
        v.apply(ObjectId(3), Point::new(5.0, 9.0));
        assert_eq!(v.net_pos(ObjectId(3)).unwrap().edge, 2);
        v.remove(ObjectId(3));
        assert_eq!(v.net_pos(ObjectId(3)), None);
        assert!(v.grid().is_empty());
    }
}
