//! Deterministic fault-injection points for the simulation harness.
//!
//! `igern-sim` drives the full stack — serial [`Processor`], the sharded
//! engine, and the network server — from one seed and needs to perturb
//! each of them *at the same logical instant* regardless of which threads
//! happen to run the code. [`SimHooks`] is that seam: every tick backend
//! calls into the (optional) hook object at fixed points of the tick
//! protocol, and the simulator's implementation decides — purely from the
//! logical `(tick, worker)` coordinates — whether to inject a grid
//! desync, stall a worker shard, or do nothing.
//!
//! Production builds never install hooks; the per-tick cost of the
//! disabled path is one `Option` check.
//!
//! [`Processor`]: crate::processor::Processor

use igern_grid::ObjectId;
use std::sync::Arc;

/// Injection points honored by every tick backend.
///
/// All methods default to no-ops so implementors override only the
/// faults they script. Implementations must be deterministic functions
/// of their arguments (plus internal state advanced in tick order):
/// the harness replays schedules by re-running them, and a hook that
/// consults wall-clock time or an unseeded RNG breaks replay.
pub trait SimHooks: Send + Sync {
    /// Called by the tick owner (serial processor, sharded coordinator,
    /// or the server tick thread via its runner) after the tick counter
    /// has advanced and pending updates are applied, immediately before
    /// query evaluation.
    fn on_tick(&self, _tick: u64) {}

    /// Called by each sharded-engine worker right before it evaluates
    /// its shard for `tick`. Sleeping here simulates a straggler worker
    /// without affecting the merged answer (the merge is order-blind).
    fn on_worker_shard(&self, _worker: usize, _tick: u64) {}

    /// Object ids whose grid slots should be corrupted (via
    /// `debug_force_desync`) at the start of `tick`, after updates are
    /// applied and before evaluation. Return an empty vector for clean
    /// ticks.
    fn desync_targets(&self, tick: u64) -> Vec<ObjectId> {
        let _ = tick;
        Vec::new()
    }

    /// Called by the network server's tick thread just before it hands
    /// the tick to its runner (the serving-layer analogue of
    /// [`SimHooks::on_tick`], which fires inside the runner). Stalling
    /// here simulates a slow tick thread while connections keep
    /// ingesting.
    fn on_server_tick(&self, _tick: u64) {}
}

/// Shared hook handle as threaded through the engines.
pub type SharedSimHooks = Arc<dyn SimHooks>;
