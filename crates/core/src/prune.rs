//! Bisector pruning of grid cells — the *alive / dead* machinery shared by
//! the IGERN initial and incremental steps (and by the TPL baseline, which
//! the paper notes IGERN's initial step resembles).
//!
//! "A bisector b_j between o_j and q indicates that all objects between
//! b_j and the furthest space boundaries from q would be closer to o_j
//! than q. Thus, all the grid cells between b_j and these boundaries are
//! marked as dead" (§3.1).

use igern_geom::{ConvexPolygon, HalfPlane, Point, RegionSide};
use igern_grid::{CellSet, Grid};

/// How aggressively objects inside *alive* cells are filtered during the
/// tighten loop (ablation A2 in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneGranularity {
    /// Cell granularity only, as literally written in Algorithms 1–4: any
    /// non-candidate object in an alive cell becomes a candidate. With
    /// multiple objects per cell the candidate set scales with cell
    /// occupancy.
    Cell,
    /// Exact: an object already dominated by a current candidate
    /// (`dist(o, c) < dist(o, q)`) is skipped at discovery — the cleaning
    /// rule of Algorithm 2 line 8 applied eagerly. This is what makes the
    /// monitored set independent of grid granularity (the paper's ≈3.3
    /// average) and is the default.
    #[default]
    Exact,
}

/// Mark dead every alive cell lying entirely on the pruned side of the
/// bisector between `q` (kept) and `site` (pruned). Returns the number of
/// cells killed. Cells straddling the bisector stay alive — pruning is at
/// cell granularity, exactly as in the paper.
pub fn kill_cells_beyond_bisector(
    grid: &Grid,
    alive: &mut CellSet,
    q: Point,
    site: Point,
) -> usize {
    let Some(h) = HalfPlane::bisector(q, site) else {
        // Coincident points: no bisector, nothing to prune.
        return 0;
    };
    kill_cells(grid, alive, &h)
}

/// Mark dead every alive cell entirely outside `h`'s kept side.
///
/// A cell is outside iff its most-inside corner — picked per axis from the
/// sign of the boundary normal — lies strictly on the pruned side, which
/// by linearity is exactly the all-four-corners test of
/// [`HalfPlane::classify`]. Along one grid row that corner's signed
/// distance is monotone in the column index, so the dead cells of a row
/// form a contiguous run at the row's pruned end: each row resolves with a
/// bisection of at most `log n` corner tests plus one masked range clear,
/// instead of classifying every alive cell individually.
pub fn kill_cells(grid: &Grid, alive: &mut CellSet, h: &HalfPlane) -> usize {
    let n = grid.cells_per_side();
    if n == 0 || alive.is_empty() {
        return 0;
    }
    let normal = h.normal();
    // Evaluated with the same arithmetic as `classify(&cell_bounds(..))`
    // at that corner, so the dead set is bit-identical to a per-cell
    // classify sweep (floating-point monotonicity puts the evaluated
    // minimum at the geometric minimum corner).
    let outside = |ix: usize, iy: usize| -> bool {
        let b = grid.cell_bounds_at(ix, iy);
        let x = if normal.x > 0.0 { b.min.x } else { b.max.x };
        let y = if normal.y > 0.0 { b.min.y } else { b.max.y };
        !h.contains(Point::new(x, y))
    };
    // Rows with no alive cell are no-op kills; bound the sweep to the
    // alive id range (after a few bisectors the region is a handful of
    // rows around q).
    let (Some(first), Some(last)) = (alive.first_set(), alive.last_set()) else {
        return 0;
    };
    let mut removed = 0;
    for iy in first / n..=last / n {
        // Dead columns form a suffix when the normal points along +x and
        // a prefix when it points along -x (a whole-row kill when the
        // boundary is horizontal and the row's band is beyond it).
        let range = if normal.x > 0.0 {
            if !outside(n - 1, iy) {
                continue;
            }
            if outside(0, iy) {
                0..n
            } else {
                // Invariant: outside(hi), !outside(lo); find the first
                // dead column.
                let (mut lo, mut hi) = (0, n - 1);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if outside(mid, iy) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                hi..n
            }
        } else {
            if !outside(0, iy) {
                continue;
            }
            if outside(n - 1, iy) {
                0..n
            } else {
                // Invariant: outside(lo), !outside(hi); find the last
                // dead column.
                let (mut lo, mut hi) = (0, n - 1);
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if outside(mid, iy) {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                0..lo + 1
            }
        };
        removed += alive.remove_range(iy * n + range.start, iy * n + range.end);
    }
    removed
}

/// Reusable buffers for the pruning and cleaning routines: polygon rings
/// for the scanline redraw, bisector staging for the order-k redraw, and
/// ordering/keep marks for candidate cleaning. One of these lives inside
/// every `EvalScratch`, so steady-state redraws allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct PruneScratch {
    region: ConvexPolygon,
    strip: ConvexPolygon,
    clip_buf: Vec<Point>,
    planes: Vec<HalfPlane>,
    order: Vec<usize>,
    keep: Vec<bool>,
    kept: Vec<Point>,
}

/// Recompute the alive region from scratch. This is the redraw of the
/// incremental steps ("Redraw the bisectors between q and all objects in
/// RNNcand; only the cells between q and the bisectors are marked as
/// alive", Algorithm 2 lines 3–4).
///
/// Implementation note: the naive redraw classifies **every** grid cell
/// against every bisector — `O(n²·k)` per tick, which at paper scale
/// (64×64 grid, per-tick redraw) costs more than all the searches
/// combined. Instead the exact kept region (the intersection of the
/// bisector half-planes, clipped to the data space — a convex polygon
/// around `q`) is materialized first and rasterized onto the grid by
/// scanline. The result can be a strict subset of
/// the per-bisector redraw (a cell can avoid being fully beyond any
/// single bisector yet still miss the intersection), but it always covers
/// every cell that intersects the exact kept region — which is where all
/// potential answers live — so completeness is unaffected.
pub fn recompute_alive(grid: &Grid, q: Point, sites: &[Point]) -> CellSet {
    let mut alive = CellSet::new(grid.num_cells());
    let mut scratch = PruneScratch::default();
    recompute_alive_into(grid, q, sites, &mut alive, &mut scratch);
    alive
}

/// [`recompute_alive`] writing into a caller-provided set (re-shaped to
/// this grid and cleared first) with reusable polygon scratch, so a warm
/// redraw performs no heap allocation.
pub fn recompute_alive_into(
    grid: &Grid,
    q: Point,
    sites: &[Point],
    alive: &mut CellSet,
    scratch: &mut PruneScratch,
) {
    alive.reset(grid.num_cells());
    let region = &mut scratch.region;
    region.set_from_aabb(grid.space());
    for &s in sites {
        if let Some(h) = HalfPlane::bisector(q, s) {
            region.clip_with(&h, &mut scratch.clip_buf);
        }
    }
    let bbox = match region.bounding_box() {
        Some(b) => b,
        // The region always contains q, so an empty polygon can only be
        // numerical degeneracy; fall back to q's own cell.
        None => {
            alive.insert(grid.cell_of_point(q));
            return;
        }
    };
    // Scanline rasterization: for each grid row under the region's bbox,
    // clip the polygon to the row's y-band and mark the cells under the
    // clipped part's x-extent. For a convex region this marks exactly the
    // cells the polygon intersects, in O(rows · vertices + |alive|) —
    // crucially independent of the bbox area, which spans half the grid
    // whenever the region is open toward a space boundary.
    let lo = grid.space().clamp(bbox.min);
    let hi = grid.space().clamp(bbox.max);
    let (ix_lo, iy0) = grid.cell_coords(grid.cell_of_point(lo));
    let (ix_hi, iy1) = grid.cell_coords(grid.cell_of_point(hi));
    for iy in iy0..=iy1 {
        let band = grid.cell_bounds(grid.cell_at(0, iy));
        let above = HalfPlane::from_coeffs(0.0, -1.0, -band.min.y).expect("unit normal");
        let below = HalfPlane::from_coeffs(0.0, 1.0, band.max.y).expect("unit normal");
        let strip = &mut scratch.strip;
        strip.copy_from(region);
        strip.clip_with(&above, &mut scratch.clip_buf);
        strip.clip_with(&below, &mut scratch.clip_buf);
        let (ix0, ix1) = match strip.bounding_box() {
            Some(b) => {
                let l = grid.space().clamp(b.min);
                let r = grid.space().clamp(b.max);
                (
                    grid.cell_coords(grid.cell_of_point(l)).0,
                    grid.cell_coords(grid.cell_of_point(r)).0,
                )
            }
            // The strip degenerated to (near) nothing — possibly a sliver
            // thinner than the clipper's vertex tolerance. Fall back to
            // the full bbox x-range for this row: conservative (a few
            // extra alive cells), never incomplete.
            None => (ix_lo, ix_hi),
        };
        for ix in ix0..=ix1 {
            alive.insert(grid.cell_at(ix, iy));
        }
    }
    // Guard against pathological clipping: the query's own cell is always
    // part of the region.
    alive.insert(grid.cell_of_point(q));
}

/// The candidate-cleaning rule shared by both incremental steps
/// (Algorithm 2 line 8, Algorithm 4 line 8): drop a monitored object
/// `o_i` when some other monitored object `o_j` is closer to it than the
/// query is — `o_i` can then be neither an answer nor a bisector that
/// bounds one.
///
/// Removal is sequential in increasing distance from the query: a
/// candidate is dropped only when dominated by a candidate that is
/// *kept*. (Applying the paper's rule simultaneously would delete both
/// members of a mutually-dominating pair, throwing away the bisector that
/// bounds the region and re-discovering both next tick — sequential
/// application keeps the nearer one and is what the rule needs to mean
/// for the region to stay bounded.)
///
/// `items` are `(position, payload)` pairs; the function retains the
/// non-dominated ones in place, preserving their relative order.
pub fn clean_dominated<T>(items: &mut Vec<(Point, T)>, q: Point) {
    clean_dominated_with(items, q, &mut PruneScratch::default());
}

/// [`clean_dominated`] with reusable ordering scratch.
pub fn clean_dominated_with<T>(items: &mut Vec<(Point, T)>, q: Point, scratch: &mut PruneScratch) {
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..items.len());
    order.sort_by(|&i, &j| items[i].0.dist_sq(q).total_cmp(&items[j].0.dist_sq(q)));
    let keep = &mut scratch.keep;
    keep.clear();
    keep.resize(items.len(), false);
    let kept_positions = &mut scratch.kept;
    kept_positions.clear();
    for &i in order.iter() {
        let p = items[i].0;
        let d_q = p.dist_sq(q);
        if kept_positions.iter().all(|k| p.dist_sq(*k) >= d_q) {
            keep[i] = true;
            kept_positions.push(p);
        }
    }
    let mut it = keep.iter();
    items.retain(|_| *it.next().unwrap());
}

/// Order-`k` alive-region recomputation for the RkNN extension: a cell is
/// dead iff it lies fully beyond the bisectors of **at least `k`**
/// monitored sites (every point of it then has ≥ k objects closer than
/// the query, so nothing in it can be a reverse k-nearest neighbor).
///
/// The order-k region is a union of half-plane intersections and is not
/// convex, so the scanline trick of [`recompute_alive`] does not apply;
/// the grid is scanned densely. `k = 1` falls back to the fast convex
/// path.
pub fn recompute_alive_k(grid: &Grid, q: Point, sites: &[Point], k: usize) -> CellSet {
    let mut alive = CellSet::new(grid.num_cells());
    recompute_alive_k_into(grid, q, sites, k, &mut alive, &mut PruneScratch::default());
    alive
}

/// [`recompute_alive_k`] writing into a caller-provided set with reusable
/// bisector staging.
pub fn recompute_alive_k_into(
    grid: &Grid,
    q: Point,
    sites: &[Point],
    k: usize,
    alive: &mut CellSet,
    scratch: &mut PruneScratch,
) {
    assert!(k >= 1, "order must be positive");
    if k == 1 {
        recompute_alive_into(grid, q, sites, alive, scratch);
        return;
    }
    let planes = &mut scratch.planes;
    planes.clear();
    planes.extend(sites.iter().filter_map(|&s| HalfPlane::bisector(q, s)));
    alive.reset(grid.num_cells());
    if planes.len() < k {
        // Fewer than k bisectors can never exclude a cell.
        alive.fill();
        return;
    }
    for c in 0..grid.num_cells() {
        let bounds = grid.cell_bounds(c);
        let mut violated = 0;
        for h in planes.iter() {
            if h.classify(&bounds) == RegionSide::Outside {
                violated += 1;
                if violated >= k {
                    break;
                }
            }
        }
        if violated < k {
            alive.insert(c);
        }
    }
    alive.insert(grid.cell_of_point(q));
}

/// Order-`k` cleaning: drop a monitored object when **at least `k`** kept
/// monitored objects are strictly closer to it than the query — it can
/// then neither be an answer nor contribute a needed bisector. Sequential
/// in distance order, like [`clean_dominated`]. `k = 1` coincides with
/// it.
pub fn clean_dominated_k<T>(items: &mut Vec<(Point, T)>, q: Point, k: usize) {
    clean_dominated_k_with(items, q, k, &mut PruneScratch::default());
}

/// [`clean_dominated_k`] with reusable ordering scratch.
pub fn clean_dominated_k_with<T>(
    items: &mut Vec<(Point, T)>,
    q: Point,
    k: usize,
    scratch: &mut PruneScratch,
) {
    assert!(k >= 1, "order must be positive");
    let order = &mut scratch.order;
    order.clear();
    order.extend(0..items.len());
    order.sort_by(|&i, &j| items[i].0.dist_sq(q).total_cmp(&items[j].0.dist_sq(q)));
    let keep = &mut scratch.keep;
    keep.clear();
    keep.resize(items.len(), false);
    let kept_positions = &mut scratch.kept;
    kept_positions.clear();
    for &i in order.iter() {
        let p = items[i].0;
        let d_q = p.dist_sq(q);
        let dominators = kept_positions
            .iter()
            .filter(|kp| p.dist_sq(**kp) < d_q)
            .count();
        if dominators < k {
            keep[i] = true;
            kept_positions.push(p);
        }
    }
    let mut it = keep.iter();
    items.retain(|_| *it.next().unwrap());
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid(n: usize) -> Grid {
        Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), n)
    }

    #[test]
    fn bisector_kills_far_half() {
        let g = grid(10);
        let mut alive = CellSet::full(g.num_cells());
        let q = Point::new(2.0, 5.0);
        let o = Point::new(8.0, 5.0);
        // Bisector at x = 5: the 5 right-most columns die.
        // Column 5 spans x ∈ [5, 6]: its left corners sit ON the bisector,
        // so it straddles and survives; columns 6..10 (40 cells) die.
        let killed = kill_cells_beyond_bisector(&g, &mut alive, q, o);
        assert_eq!(killed, 40);
        assert_eq!(alive.count(), 60);
        // q's own cell stays alive; o's cell is dead.
        assert!(alive.contains(g.cell_of_point(q)));
        assert!(!alive.contains(g.cell_of_point(o)));
    }

    #[test]
    fn straddling_cells_survive() {
        let g = grid(4); // cell width 2.5; bisector at x = 5 is a cell edge
        let mut alive = CellSet::full(g.num_cells());
        kill_cells_beyond_bisector(&g, &mut alive, Point::new(2.0, 5.0), Point::new(8.0, 5.0));
        // Columns 0..2 (x < 5) survive; columns 2.. die only if fully
        // beyond. With the boundary exactly on the cell edge, the closed
        // kept side keeps the edge cells' left borders — they die because
        // all four corners are not strictly outside? The corners on x=5
        // are ON the line, i.e. inside the closed half-plane.
        let on_boundary_cell = g.cell_at(2, 0); // spans x in [5, 7.5]
        assert!(
            alive.contains(on_boundary_cell),
            "cell touching the bisector must stay alive"
        );
        let far_cell = g.cell_at(3, 0); // spans x in [7.5, 10]
        assert!(!alive.contains(far_cell));
    }

    #[test]
    fn row_sweep_matches_per_cell_classify() {
        // The bisection kill must produce the exact dead set of the
        // reference per-cell classify sweep — including straddling cells
        // and bisectors at every orientation — even when the alive set is
        // already partially dead.
        let mut state = 83u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for n in [1usize, 3, 8, 16] {
            let g = grid(n);
            for round in 0..40 {
                let q = Point::new(rnd(), rnd());
                let site = match round % 4 {
                    // Axis-aligned bisectors exercise the zero-normal
                    // components.
                    0 => Point::new(rnd(), q.y),
                    1 => Point::new(q.x, rnd()),
                    _ => Point::new(rnd(), rnd()),
                };
                let Some(h) = HalfPlane::bisector(q, site) else {
                    continue;
                };
                let mut fast = CellSet::full(g.num_cells());
                // Pre-kill a random slice so the sweep also runs against
                // partially-dead sets.
                if round % 3 == 0 {
                    kill_cells_beyond_bisector(&g, &mut fast, q, Point::new(rnd(), rnd()));
                }
                let mut slow = fast.clone();
                let fast_removed = kill_cells(&g, &mut fast, &h);
                let slow_removed =
                    slow.retain(|c| h.classify(&g.cell_bounds(c)) != RegionSide::Outside);
                assert_eq!(fast, slow, "n={n} round={round} q={q} site={site}");
                assert_eq!(fast_removed, slow_removed);
            }
        }
    }

    #[test]
    fn coincident_site_is_a_noop() {
        let g = grid(5);
        let mut alive = CellSet::full(g.num_cells());
        let q = Point::new(5.0, 5.0);
        assert_eq!(kill_cells_beyond_bisector(&g, &mut alive, q, q), 0);
        assert_eq!(alive.count(), g.num_cells());
    }

    #[test]
    fn recompute_is_a_subset_of_sequential_killing() {
        // The polygon-bbox redraw may legitimately kill more cells than
        // per-bisector killing (a cell can be outside the intersection
        // without being fully beyond any single bisector), but never
        // fewer, and always keeps the query's cell.
        let g = grid(8);
        let q = Point::new(3.0, 3.0);
        let sites = [
            Point::new(7.0, 3.0),
            Point::new(3.0, 9.0),
            Point::new(1.0, 1.0),
        ];
        let redraw = recompute_alive(&g, q, &sites);
        let mut seq = CellSet::full(g.num_cells());
        for &s in &sites {
            kill_cells_beyond_bisector(&g, &mut seq, q, s);
        }
        for c in redraw.iter() {
            assert!(
                seq.contains(c),
                "redraw kept a cell sequential killing removed"
            );
        }
        assert!(redraw.contains(g.cell_of_point(q)));
    }

    #[test]
    fn recompute_covers_every_non_dominated_point() {
        // Completeness: any probe point at least as close to q as to every
        // site must land in an alive cell.
        let g = grid(16);
        let q = Point::new(4.2, 5.9);
        let sites = [
            Point::new(8.0, 6.0),
            Point::new(4.0, 1.5),
            Point::new(0.5, 8.0),
            Point::new(5.0, 9.0),
        ];
        let alive = recompute_alive(&g, q, &sites);
        for i in 0..64 {
            for j in 0..64 {
                let p = Point::new(i as f64 * 10.0 / 63.0, j as f64 * 10.0 / 63.0);
                let d_q = p.dist_sq(q);
                if sites.iter().all(|s| d_q <= p.dist_sq(*s)) {
                    assert!(
                        alive.contains(g.cell_of_point(p)),
                        "non-dominated point {p} in a dead cell"
                    );
                }
            }
        }
    }

    #[test]
    fn recompute_with_no_sites_is_everything() {
        let g = grid(8);
        let alive = recompute_alive(&g, Point::new(5.0, 5.0), &[]);
        assert_eq!(alive.count(), g.num_cells());
    }

    #[test]
    fn alive_region_is_sound() {
        // Any point in a dead cell must be closer to some site than to q.
        let g = grid(16);
        let q = Point::new(4.0, 6.0);
        let sites = [Point::new(8.0, 6.0), Point::new(4.0, 1.0)];
        let alive = recompute_alive(&g, q, &sites);
        for c in 0..g.num_cells() {
            if alive.contains(c) {
                continue;
            }
            let center = g.cell_bounds(c).center();
            let dominated = sites.iter().any(|s| center.dist_sq(*s) < center.dist_sq(q));
            assert!(dominated, "dead cell {c} center not dominated");
        }
    }

    #[test]
    fn clean_dominated_removes_shadowed_candidates() {
        let q = Point::new(0.0, 0.0);
        // c0 is close to q; c1 sits right behind c0 (closer to c0 than to q).
        let mut items = vec![
            (Point::new(1.0, 0.0), "c0"),
            (Point::new(1.5, 0.0), "c1"),
            (Point::new(0.0, 2.0), "c2"),
        ];
        clean_dominated(&mut items, q);
        let names: Vec<&str> = items.iter().map(|&(_, n)| n).collect();
        assert_eq!(names, vec!["c0", "c2"]);
    }

    #[test]
    fn clean_dominated_keeps_mutually_far_candidates() {
        let q = Point::new(5.0, 5.0);
        let mut items = vec![
            (Point::new(6.0, 5.0), 0),
            (Point::new(4.0, 5.0), 1),
            (Point::new(5.0, 6.5), 2),
        ];
        clean_dominated(&mut items, q);
        assert_eq!(items.len(), 3);
    }

    #[test]
    fn clean_dominated_keeps_one_of_a_mutual_pair() {
        // Two candidates dominate each other; the nearer to q survives so
        // its bisector keeps bounding the region.
        let q = Point::ORIGIN;
        let mut items = vec![
            (Point::new(2.1, 0.0), "far"),
            (Point::new(2.0, 0.0), "near"),
        ];
        clean_dominated(&mut items, q);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].1, "near");
    }

    #[test]
    fn recompute_alive_k_covers_order_k_region() {
        // Any probe with fewer than k sites strictly closer than q must
        // land in an alive cell.
        let g = grid(16);
        let q = Point::new(5.0, 5.0);
        let sites = [
            Point::new(7.0, 5.0),
            Point::new(3.0, 5.0),
            Point::new(5.0, 8.0),
            Point::new(5.0, 2.0),
        ];
        for k in 1..=3usize {
            let alive = recompute_alive_k(&g, q, &sites, k);
            for i in 0..40 {
                for j in 0..40 {
                    let p = Point::new(i as f64 * 0.25, j as f64 * 0.25);
                    let d_q = p.dist_sq(q);
                    let closer = sites.iter().filter(|s| p.dist_sq(**s) < d_q).count();
                    if closer < k {
                        assert!(
                            alive.contains(g.cell_of_point(p)),
                            "k={k}: probe {p} (closer={closer}) in dead cell"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn recompute_alive_k_grows_with_k() {
        let g = grid(12);
        let q = Point::new(5.0, 5.0);
        let sites = [
            Point::new(7.0, 5.0),
            Point::new(3.0, 5.0),
            Point::new(5.0, 7.5),
        ];
        let a1 = recompute_alive_k(&g, q, &sites, 1);
        let a2 = recompute_alive_k(&g, q, &sites, 2);
        for c in a1.iter() {
            assert!(a2.contains(c), "order-2 region must contain order-1");
        }
        assert!(a2.count() > a1.count());
        // With fewer than k sites everything is alive.
        let a_all = recompute_alive_k(&g, q, &sites, 4);
        assert_eq!(a_all.count(), g.num_cells());
    }

    #[test]
    fn clean_dominated_k_requires_k_dominators() {
        let q = Point::ORIGIN;
        // c2 has exactly one kept dominator (c0); with k=2 it survives.
        let items = vec![
            (Point::new(1.0, 0.0), "c0"),
            (Point::new(1.4, 0.0), "c1"),
            (Point::new(1.8, 0.0), "c2"),
        ];
        let mut k1 = items.clone();
        clean_dominated_k(&mut k1, q, 1);
        assert_eq!(k1.iter().map(|&(_, n)| n).collect::<Vec<_>>(), vec!["c0"]);
        let mut k2 = items.clone();
        clean_dominated_k(&mut k2, q, 2);
        assert_eq!(
            k2.iter().map(|&(_, n)| n).collect::<Vec<_>>(),
            vec!["c0", "c1"],
            "c2 is dominated by both kept candidates under k=2"
        );
        let mut k3 = items;
        clean_dominated_k(&mut k3, q, 3);
        assert_eq!(k3.len(), 3);
    }

    #[test]
    fn clean_dominated_on_empty_and_singleton() {
        let q = Point::ORIGIN;
        let mut empty: Vec<(Point, ())> = Vec::new();
        clean_dominated(&mut empty, q);
        assert!(empty.is_empty());
        let mut one = vec![(Point::new(1.0, 1.0), ())];
        clean_dominated(&mut one, q);
        assert_eq!(one.len(), 1);
    }
}
