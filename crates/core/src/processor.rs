//! The continuous query processor: many standing RNN queries of mixed
//! algorithms evaluated over one update stream, tick by tick, with
//! per-tick metrics.
//!
//! This is the engine the experiment harness drives. At each tick the
//! caller feeds the position updates (from any `igern_mobgen` mover), the
//! processor applies them to the [`SpatialStore`], then re-evaluates every
//! registered query with its [`ContinuousMonitor`], recording a
//! [`TickSample`](crate::metrics::TickSample).
//!
//! # Dirty-region update routing
//!
//! The store journals which grid cells were touched since the last tick.
//! Before re-evaluating a query, the processor intersects the tick's
//! dirty set with the query's watched cells
//! ([`ContinuousMonitor::monitored_cells`]) plus its anchor cell; when
//! they are disjoint, the previous answer is provably still valid and the
//! query is skipped, recording a zero-cost sample marked
//! [`TickSample::skipped`](crate::metrics::TickSample::skipped). Routing is on by default and can be turned
//! off with [`Processor::set_skip_routing`] (every query then re-runs
//! every tick, the pre-routing behavior).

use std::time::Instant;

use igern_geom::Point;
use igern_grid::ObjectId;

use crate::batch::{BatchEvaluator, SlotLane};
use crate::eval::{evaluate_query, QuerySlot};
use crate::history::History;
use crate::hooks::SharedSimHooks;
use crate::monitor::{ContinuousMonitor, NullMonitor};
use crate::obs::PipelineMetrics;
use crate::scratch::EvalScratch;
use crate::store::SpatialStore;

/// Which algorithm evaluates a continuous query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// IGERN, monochromatic (Algorithms 1–2).
    IgernMono,
    /// CRNN six-pie monitoring (monochromatic).
    Crnn,
    /// Snapshot TPL re-run every tick (monochromatic).
    TplRepeat,
    /// IGERN, bichromatic (Algorithms 3–4). The query object must be of
    /// kind A.
    IgernBi,
    /// Voronoi-cell reconstruction every tick (bichromatic).
    VoronoiRepeat,
    /// IGERN generalized to reverse k-nearest neighbors, monochromatic
    /// (the journal-version extension).
    IgernMonoK(usize),
    /// IGERN generalized to reverse k-nearest neighbors, bichromatic.
    IgernBiK(usize),
    /// Plain continuous k-nearest neighbors (guard-circle monitoring) —
    /// the substrate facility of the paper's reference \[17\], offered as a
    /// processor algorithm for completeness.
    Knn(usize),
}

impl Algorithm {
    /// Whether the algorithm answers bichromatic queries.
    pub fn is_bichromatic(self) -> bool {
        matches!(
            self,
            Algorithm::IgernBi | Algorithm::VoronoiRepeat | Algorithm::IgernBiK(_)
        )
    }
}

/// One registered continuous query: the shared evaluator state plus the
/// processor-side sample log.
struct Query {
    slot: QuerySlot,
    history: History,
    /// Tombstone: the query was removed and is skipped by evaluation.
    removed: bool,
}

/// The processor's query vector as a batch-evaluation lane; tombstoned
/// slots are holes.
struct QueryLane<'a>(&'a mut [Query]);

impl SlotLane for QueryLane<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn slot(&mut self, i: usize) -> Option<&mut QuerySlot> {
        let q = &mut self.0[i];
        if q.removed {
            None
        } else {
            Some(&mut q.slot)
        }
    }
}

/// The processor.
pub struct Processor {
    store: SpatialStore,
    queries: Vec<Query>,
    tick: u64,
    skip_routing: bool,
    batch: bool,
    history_capacity: Option<usize>,
    metrics: Option<PipelineMetrics>,
    sim_hooks: Option<SharedSimHooks>,
    /// Reusable evaluation workspace for the serial path; once warm, a
    /// steady-state tick allocates nothing.
    scratch: EvalScratch,
    /// Per-worker scratches for the parallel path, grown on demand.
    scratch_pool: Vec<EvalScratch>,
    /// Shared-scan batch evaluator for the serial path (used when
    /// [`Processor::set_batch`] enables batching).
    batch_eval: BatchEvaluator,
}

impl Processor {
    /// Wrap a loaded store. Dirty-region skip routing starts enabled and
    /// per-query histories are unbounded.
    pub fn new(store: SpatialStore) -> Self {
        Processor {
            store,
            queries: Vec::new(),
            tick: 0,
            skip_routing: true,
            batch: false,
            history_capacity: None,
            metrics: None,
            sim_hooks: None,
            scratch: EvalScratch::new(),
            scratch_pool: Vec::new(),
            batch_eval: BatchEvaluator::new(),
        }
    }

    /// Attach (or detach, with `None`) an observability bundle. When set,
    /// every round records phase timings, per-query samples, dirty-cell
    /// counts, and §6 operation totals into the bundle's registry. The
    /// hot path pays only relaxed atomic increments; detached (the
    /// default) it pays nothing.
    pub fn set_metrics(&mut self, metrics: Option<PipelineMetrics>) {
        self.metrics = metrics;
    }

    /// The attached observability bundle, if any.
    pub fn metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_ref()
    }

    /// Install (or clear, with `None`) simulation fault-injection hooks
    /// (see [`crate::hooks::SimHooks`]). [`Processor::step`] fires
    /// [`on_tick`](crate::hooks::SimHooks::on_tick) and applies
    /// [`desync_targets`](crate::hooks::SimHooks::desync_targets)
    /// after updates are applied and before evaluation. Never installed
    /// in production; the disabled path costs one `Option` check.
    pub fn set_sim_hooks(&mut self, hooks: Option<SharedSimHooks>) {
        self.sim_hooks = hooks;
    }

    /// The underlying store.
    pub fn store(&self) -> &SpatialStore {
        &self.store
    }

    /// Test hook: corrupt the store's bucket state for `id` (see
    /// [`SpatialStore::debug_force_desync`]). Returns whether the object
    /// was present.
    #[doc(hidden)]
    pub fn debug_force_desync(&mut self, id: ObjectId) -> bool {
        self.store.debug_force_desync(id)
    }

    /// Enable or disable dirty-region skip routing in [`Processor::step`]
    /// / [`Processor::step_parallel`]. Disabled, every query re-evaluates
    /// every tick (the force-evaluate oracle).
    pub fn set_skip_routing(&mut self, on: bool) {
        self.skip_routing = on;
    }

    /// Whether dirty-region skip routing is enabled.
    pub fn skip_routing(&self) -> bool {
        self.skip_routing
    }

    /// Enable or disable anchor-cell shared-scan batch evaluation on the
    /// serial path (see [`crate::batch::BatchEvaluator`]). Off by default;
    /// answers, op counters, and skip decisions are bit-identical either
    /// way — batching only changes how grid buckets are scanned.
    pub fn set_batch(&mut self, on: bool) {
        self.batch = on;
    }

    /// Whether shared-scan batch evaluation is enabled.
    pub fn batch(&self) -> bool {
        self.batch
    }

    /// Cap the per-query sample history of **subsequently added** queries
    /// at `cap` retained samples (`None` = unbounded, the default).
    /// Summary stats ([`History::stats`]) still fold every sample exactly,
    /// so eviction never changes reported aggregates.
    pub fn set_history_capacity(&mut self, cap: Option<usize>) {
        if let Some(c) = cap {
            assert!(c >= 1, "history capacity must be at least 1");
        }
        self.history_capacity = cap;
    }

    /// The history capacity applied to newly added queries.
    pub fn history_capacity(&self) -> Option<usize> {
        self.history_capacity
    }

    /// Register a continuous query anchored at moving object `obj`;
    /// returns its index.
    ///
    /// # Panics
    /// Panics when `obj` is not in the store, or when a bichromatic
    /// algorithm is requested for a non-A object.
    pub fn add_query(&mut self, obj: ObjectId, algo: Algorithm) -> usize {
        self.add_query_in(obj, algo, crate::types::DistanceMode::Euclidean)
    }

    /// [`Processor::add_query`] with an explicit distance mode; returns
    /// the query's index.
    ///
    /// # Panics
    /// Panics under the [`Processor::add_query`] conditions, and
    /// additionally when network mode is requested but the store has no
    /// attached road network (see `SpatialStore::set_network`).
    pub fn add_query_in(
        &mut self,
        obj: ObjectId,
        algo: Algorithm,
        mode: crate::types::DistanceMode,
    ) -> usize {
        if algo.is_bichromatic() {
            assert_eq!(
                self.store.kind(obj),
                crate::types::ObjectKind::A,
                "bichromatic query object must be of kind A"
            );
        }
        if let Algorithm::IgernMonoK(k) | Algorithm::IgernBiK(k) | Algorithm::Knn(k) = algo {
            assert!(k >= 1, "k must be positive");
        }
        if mode == crate::types::DistanceMode::Network {
            assert!(
                self.store.network().is_some(),
                "network-mode query requires a store with an attached road network"
            );
        }
        self.add_query_with(obj, algo.make_monitor_in(mode, Some(obj)))
    }

    /// Register a continuous query evaluated by a caller-supplied
    /// monitor (e.g. a custom [`ContinuousMonitor`] implementation);
    /// returns its index. Tombstoned slots are reused, so the index of a
    /// previously removed query may be handed out again.
    ///
    /// # Panics
    /// Panics when `obj` is not in the store.
    pub fn add_query_with(&mut self, obj: ObjectId, monitor: Box<dyn ContinuousMonitor>) -> usize {
        assert!(
            self.store.position(obj).is_some(),
            "query object {obj} not in store"
        );
        let q = Query {
            slot: QuerySlot::new(obj, monitor),
            history: History::with_capacity(self.history_capacity),
            removed: false,
        };
        match self.queries.iter().position(|slot| slot.removed) {
            Some(i) => {
                // Hand the tombstone's (cleared) answer buffer to the new
                // tenant so slot churn does not reallocate it.
                let old = std::mem::replace(&mut self.queries[i], q);
                let mut buf = old.slot.answer;
                buf.clear();
                self.queries[i].slot.answer = buf;
                i
            }
            None => {
                self.queries.push(q);
                self.queries.len() - 1
            }
        }
    }

    /// Drop a registered query, freeing its monitor state and history
    /// allocations (the answer buffer is kept for the slot's next
    /// tenant). Indices of other queries are stable (the slot is
    /// tombstoned until [`Processor::add_query`] reuses it); accessing a
    /// removed query panics.
    pub fn remove_query(&mut self, i: usize) {
        assert!(!self.queries[i].removed, "query {i} already removed");
        let q = &mut self.queries[i];
        q.removed = true;
        q.slot.initialized = false;
        q.slot.monitor = Box::new(NullMonitor);
        // Keep the answer buffer's allocation for the slot's next tenant;
        // clearing empties the visible answer just the same.
        q.slot.answer.clear();
        q.history = History::unbounded();
    }

    /// Insert a new moving object into the store at runtime.
    pub fn insert_object(&mut self, id: ObjectId, kind: crate::types::ObjectKind, pos: Point) {
        self.store.insert(id, kind, pos);
    }

    /// Remove a moving object from the store at runtime.
    ///
    /// # Panics
    /// Panics if a live query is anchored at the object.
    pub fn remove_object(&mut self, id: ObjectId) -> Option<Point> {
        assert!(
            !self.queries.iter().any(|q| !q.removed && q.slot.obj == id),
            "cannot remove the anchor of a live query"
        );
        self.store.remove(id)
    }

    /// Apply a single position update without ticking. The touched cells
    /// stay in the store's dirty journal until the next
    /// [`Processor::step`] / [`Processor::evaluate_all`] closes the
    /// round, so skip routing remains sound: streaming ingesters (the
    /// network server) apply updates one by one as they arrive and then
    /// call `step(&[])` to evaluate the accumulated batch.
    pub fn apply_update(&mut self, id: ObjectId, pos: Point) {
        self.store.apply(id, pos);
        if let Some(m) = &self.metrics {
            m.updates_total.inc();
        }
    }

    /// Apply one tick of updates and re-evaluate every query, skipping
    /// those whose watched cells saw no update (when routing is on).
    pub fn step(&mut self, updates: &[(ObjectId, Point)]) {
        self.apply_updates(updates);
        self.tick += 1;
        self.fire_tick_hooks();
        self.evaluate_round(self.skip_routing);
    }

    /// Fire the pre-evaluation injection points of any installed
    /// [`SimHooks`](crate::hooks::SimHooks): `on_tick`, then the tick's
    /// scripted grid desyncs.
    fn fire_tick_hooks(&mut self) {
        if let Some(h) = self.sim_hooks.clone() {
            h.on_tick(self.tick);
            for id in h.desync_targets(self.tick) {
                self.store.debug_force_desync(id);
            }
        }
    }

    /// Apply-updates phase shared by the serial and parallel steps: one
    /// batched pass over the tick's deltas (see
    /// [`SpatialStore::apply_batch`]).
    fn apply_updates(&mut self, updates: &[(ObjectId, Point)]) {
        let start = self.metrics.is_some().then(Instant::now);
        self.store.apply_batch(updates);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.apply_seconds.observe_duration(t0.elapsed());
            m.updates_total.add(updates.len() as u64);
        }
    }

    /// Observations taken once per round, just before the journal drain.
    fn observe_round(&self, eval_start: Option<Instant>) {
        if let Some(m) = &self.metrics {
            if let Some(t0) = eval_start {
                m.evaluate_seconds.observe_duration(t0.elapsed());
            }
            m.dirty_cells.observe(self.store.dirty_all().count() as f64);
            m.ticks_total.inc();
        }
    }

    /// Evaluate all queries against the current store state without
    /// applying updates, ignoring skip routing (used for the initial
    /// evaluation at T₀ and as the force-evaluate oracle).
    pub fn evaluate_all(&mut self) {
        self.evaluate_round(false);
    }

    fn evaluate_round(&mut self, route: bool) {
        let tick = self.tick;
        let eval_start = self.metrics.is_some().then(Instant::now);
        // Queries borrow the store immutably; detach the vector to satisfy
        // the borrow checker without cloning the store.
        let mut queries = std::mem::take(&mut self.queries);
        if self.batch {
            let mut lane = QueryLane(&mut queries);
            self.batch_eval
                .run(&self.store, &mut lane, tick, route, &mut self.scratch);
            for (q, sample) in queries.iter_mut().zip(self.batch_eval.samples()) {
                if let Some(sample) = sample {
                    if let Some(m) = &self.metrics {
                        m.record_sample(sample);
                    }
                    q.history.push(*sample);
                }
            }
            if let Some(m) = &self.metrics {
                m.batch_groups_total.add(self.batch_eval.groups());
                m.batch_members_total.add(self.batch_eval.members());
            }
        } else {
            for q in &mut queries {
                if !q.removed {
                    let sample =
                        evaluate_query(&self.store, &mut q.slot, tick, route, &mut self.scratch);
                    if let Some(m) = &self.metrics {
                        m.record_sample(&sample);
                    }
                    q.history.push(sample);
                }
            }
        }
        self.queries = queries;
        self.observe_round(eval_start);
        // Close out the journal: the next tick's dirt starts from here.
        self.store.drain_dirty();
    }

    /// Apply one tick of updates and re-evaluate every query on
    /// `threads` worker threads. Queries are independent (each owns its
    /// monitor state and only reads the store), so answers are identical
    /// to [`Processor::step`]. Worthwhile when per-query evaluation is
    /// expensive (CRNN, TPL-repeat, large-k RkNN); for IGERN's ~2 µs
    /// incremental ticks the thread hand-off overhead exceeds the win —
    /// measure with the `processor_64_queries` criterion group.
    pub fn step_parallel(&mut self, updates: &[(ObjectId, Point)], threads: usize) {
        self.apply_updates(updates);
        self.tick += 1;
        self.fire_tick_hooks();
        self.evaluate_round_parallel(self.skip_routing, threads);
    }

    /// Parallel form of [`Processor::evaluate_all`] (force-evaluates).
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    pub fn evaluate_all_parallel(&mut self, threads: usize) {
        self.evaluate_round_parallel(false, threads);
    }

    fn evaluate_round_parallel(&mut self, route: bool, threads: usize) {
        assert!(threads >= 1, "need at least one worker");
        let tick = self.tick;
        let eval_start = self.metrics.is_some().then(Instant::now);
        let mut queries = std::mem::take(&mut self.queries);
        let chunk = queries.len().div_ceil(threads).max(1);
        // Persistent per-worker scratches: chunk i always takes pool
        // slot i, so repeated parallel rounds stay warm.
        if self.scratch_pool.len() < threads {
            self.scratch_pool.resize_with(threads, EvalScratch::new);
        }
        std::thread::scope(|scope| {
            for (batch, scratch) in queries.chunks_mut(chunk).zip(self.scratch_pool.iter_mut()) {
                let store = &self.store;
                let metrics = self.metrics.clone();
                scope.spawn(move || {
                    for q in batch {
                        if !q.removed {
                            let sample = evaluate_query(store, &mut q.slot, tick, route, scratch);
                            if let Some(m) = &metrics {
                                m.record_sample(&sample);
                            }
                            q.history.push(sample);
                        }
                    }
                });
            }
        });
        self.queries = queries;
        self.observe_round(eval_start);
        self.store.drain_dirty();
    }

    /// Current tick count (number of `step`/`evaluate_all` rounds).
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Number of registered queries.
    pub fn num_queries(&self) -> usize {
        self.queries.len()
    }

    /// Latest answer of query `i`, sorted by object id.
    ///
    /// # Panics
    /// Panics when the query was removed.
    pub fn answer(&self, i: usize) -> &[ObjectId] {
        assert!(!self.queries[i].removed, "query {i} was removed");
        &self.queries[i].slot.answer
    }

    /// Number of objects query `i` currently monitors.
    pub fn monitored(&self, i: usize) -> usize {
        self.queries[i].slot.monitored
    }

    /// Per-tick history of query `i` (a ring when a capacity is set; the
    /// embedded stats always cover every tick).
    pub fn history(&self, i: usize) -> &History {
        &self.queries[i].history
    }

    /// The query object of query `i`.
    pub fn query_object(&self, i: usize) -> ObjectId {
        self.queries[i].slot.obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::types::ObjectKind;
    use igern_geom::Aabb;

    /// Build a loaded store with the first `n_a` objects of kind A.
    fn store(points: &[(f64, f64)], n_a: usize) -> SpatialStore {
        let kinds = (0..points.len())
            .map(|i| {
                if i < n_a {
                    ObjectKind::A
                } else {
                    ObjectKind::B
                }
            })
            .collect();
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        s.load(&pts);
        s
    }

    #[test]
    fn mono_algorithms_agree_with_each_other_and_the_oracle() {
        let pts = [
            (5.0, 5.0),
            (4.0, 5.0),
            (6.5, 5.0),
            (5.0, 8.0),
            (1.0, 1.0),
            (9.0, 2.0),
        ];
        let mut p = Processor::new(store(&pts, pts.len()));
        let qi = p.add_query(ObjectId(0), Algorithm::IgernMono);
        let qc = p.add_query(ObjectId(0), Algorithm::Crnn);
        let qt = p.add_query(ObjectId(0), Algorithm::TplRepeat);
        p.evaluate_all();
        let objs: Vec<(ObjectId, Point)> = p.store().all().iter().collect();
        let want = naive::mono_rnn(&objs, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert_eq!(p.answer(qi), want.as_slice());
        assert_eq!(p.answer(qc), want.as_slice());
        assert_eq!(p.answer(qt), want.as_slice());
    }

    #[test]
    fn bi_algorithms_agree_over_a_moving_stream() {
        // 3 A objects (ids 0..3), 5 B objects (ids 3..8); query at object 0.
        let pts = [
            (5.0, 5.0),
            (2.0, 2.0),
            (8.0, 8.0),
            (4.0, 5.0),
            (6.0, 6.0),
            (1.0, 9.0),
            (9.0, 1.0),
            (5.0, 3.0),
        ];
        let mut p = Processor::new(store(&pts, 3));
        let qi = p.add_query(ObjectId(0), Algorithm::IgernBi);
        let qv = p.add_query(ObjectId(0), Algorithm::VoronoiRepeat);
        p.evaluate_all();
        assert_eq!(p.answer(qi), p.answer(qv));
        // Drift every object a little for a few ticks.
        let mut state = 9u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for _ in 0..10 {
            let ups: Vec<(ObjectId, Point)> = (0..8u32)
                .map(|i| {
                    let cur = p.store().position(ObjectId(i)).unwrap();
                    (
                        ObjectId(i),
                        Point::new(
                            (cur.x + rnd()).clamp(0.0, 10.0),
                            (cur.y + rnd()).clamp(0.0, 10.0),
                        ),
                    )
                })
                .collect();
            p.step(&ups);
            assert_eq!(p.answer(qi), p.answer(qv));
            let a: Vec<(ObjectId, Point)> = p.store().grid_a().iter().collect();
            let b: Vec<(ObjectId, Point)> = p.store().grid_b().iter().collect();
            let qpos = p.store().position(ObjectId(0)).unwrap();
            assert_eq!(
                p.answer(qi),
                naive::bi_rnn(&a, &b, qpos, Some(ObjectId(0))).as_slice()
            );
        }
    }

    #[test]
    fn history_accumulates_one_sample_per_tick() {
        let pts = [(5.0, 5.0), (4.0, 4.0), (6.0, 6.0)];
        let mut p = Processor::new(store(&pts, 3));
        let q = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        p.step(&[(ObjectId(1), Point::new(4.5, 4.5))]);
        p.step(&[]);
        assert_eq!(p.history(q).len(), 3);
        assert_eq!(p.history(q)[0].tick, 0);
        assert_eq!(p.history(q)[2].tick, 2);
        assert_eq!(p.tick(), 2);
        assert_eq!(p.query_object(q), ObjectId(0));
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| ((i * 7 % 40) as f64 / 4.0, (i * 13 % 40) as f64 / 4.0))
            .collect();
        let mk = || {
            let mut p = Processor::new(store(&pts, pts.len()));
            for i in 0..8u32 {
                p.add_query(ObjectId(i * 5), Algorithm::IgernMono);
            }
            p
        };
        let mut seq = mk();
        let mut par = mk();
        seq.evaluate_all();
        par.evaluate_all_parallel(4);
        let ups: Vec<(ObjectId, Point)> = (0..40u32)
            .map(|i| (ObjectId(i), Point::new((i % 10) as f64, (i / 4) as f64)))
            .collect();
        seq.step(&ups);
        par.step_parallel(&ups, 4);
        for qi in 0..8 {
            assert_eq!(seq.answer(qi), par.answer(qi), "query {qi}");
        }
        assert_eq!(seq.tick(), par.tick());
    }

    #[test]
    fn k_rnn_queries_match_the_k_oracles() {
        let pts = [
            (5.0, 5.0),
            (4.0, 5.0),
            (4.5, 5.0),
            (6.5, 5.0),
            (5.0, 8.0),
            (1.0, 1.0),
            (9.0, 2.0),
            (2.0, 8.0),
        ];
        let mut p = Processor::new(store(&pts, 4));
        let q2 = p.add_query(ObjectId(0), Algorithm::IgernMonoK(2));
        let qb2 = p.add_query(ObjectId(0), Algorithm::IgernBiK(2));
        p.evaluate_all();
        p.step(&[(ObjectId(3), Point::new(5.5, 5.2))]);
        let objs: Vec<(ObjectId, Point)> = p.store().all().iter().collect();
        let a: Vec<(ObjectId, Point)> = p.store().grid_a().iter().collect();
        let b: Vec<(ObjectId, Point)> = p.store().grid_b().iter().collect();
        let qpos = p.store().position(ObjectId(0)).unwrap();
        assert_eq!(
            p.answer(q2),
            naive::mono_rknn(&objs, qpos, Some(ObjectId(0)), 2).as_slice()
        );
        assert_eq!(
            p.answer(qb2),
            naive::bi_rknn(&a, &b, qpos, Some(ObjectId(0)), 2).as_slice()
        );
    }

    #[test]
    fn knn_queries_run_through_the_processor() {
        let pts = [(5.0, 5.0), (4.0, 5.0), (6.5, 5.0), (5.0, 8.0), (1.0, 1.0)];
        let mut p = Processor::new(store(&pts, pts.len()));
        let h = p.add_query(ObjectId(0), Algorithm::Knn(2));
        p.evaluate_all();
        // The two nearest to (5,5) are objects 1 (d=1) and 2 (d=1.5),
        // reported sorted by id.
        assert_eq!(p.answer(h), &[ObjectId(1), ObjectId(2)]);
        p.step(&[(ObjectId(4), Point::new(5.2, 5.0))]);
        assert_eq!(p.answer(h), &[ObjectId(1), ObjectId(4)]);
        assert_eq!(p.monitored(h), 2);
    }

    #[test]
    fn removed_queries_are_skipped() {
        let pts = [(5.0, 5.0), (4.0, 4.0), (6.0, 6.0)];
        let mut p = Processor::new(store(&pts, 3));
        let a = p.add_query(ObjectId(0), Algorithm::IgernMono);
        let b = p.add_query(ObjectId(1), Algorithm::IgernMono);
        p.evaluate_all();
        p.remove_query(a);
        p.step(&[]);
        // The surviving query keeps accumulating history.
        assert_eq!(p.history(b).len(), 2);
        assert_eq!(p.query_object(b), ObjectId(1));
    }

    #[test]
    #[should_panic(expected = "was removed")]
    fn removed_query_answer_panics() {
        let pts = [(5.0, 5.0), (4.0, 4.0)];
        let mut p = Processor::new(store(&pts, 2));
        let a = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        p.remove_query(a);
        let _ = p.answer(a);
    }

    #[test]
    fn dynamic_population_is_tracked_exactly() {
        let pts = [(5.0, 5.0), (4.0, 5.0), (8.0, 8.0)];
        let mut p = Processor::new(store(&pts, 3));
        let h = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        // A brand-new object appears right next to the query.
        p.insert_object(ObjectId(50), ObjectKind::A, Point::new(5.4, 5.0));
        p.step(&[]);
        let objs: Vec<(ObjectId, Point)> = p.store().all().iter().collect();
        let want = naive::mono_rnn(&objs, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert_eq!(p.answer(h), want.as_slice());
        assert!(p.answer(h).contains(&ObjectId(50)));
        // And disappears again (e.g. logs out).
        p.remove_object(ObjectId(50));
        p.step(&[]);
        let objs: Vec<(ObjectId, Point)> = p.store().all().iter().collect();
        let want = naive::mono_rnn(&objs, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert_eq!(p.answer(h), want.as_slice());
        assert!(!p.answer(h).contains(&ObjectId(50)));
    }

    #[test]
    fn tombstoned_slots_are_reused() {
        let pts = [(5.0, 5.0), (4.0, 4.0), (6.0, 6.0)];
        let mut p = Processor::new(store(&pts, 3));
        let a = p.add_query(ObjectId(0), Algorithm::IgernMono);
        let b = p.add_query(ObjectId(1), Algorithm::IgernMono);
        p.evaluate_all();
        p.remove_query(a);
        let c = p.add_query(ObjectId(2), Algorithm::Knn(1));
        assert_eq!(c, a, "removed slot must be handed out again");
        assert_ne!(c, b);
        assert_eq!(p.num_queries(), 2);
        p.step(&[]);
        assert_eq!(p.query_object(c), ObjectId(2));
        assert_eq!(p.history(c).len(), 1, "fresh query, fresh history");
    }

    #[test]
    fn bounded_history_keeps_stats_exact() {
        let pts = [(5.0, 5.0), (4.0, 4.0), (6.0, 6.0)];
        let mut p = Processor::new(store(&pts, 3));
        assert_eq!(p.history_capacity(), None);
        p.set_history_capacity(Some(2));
        assert_eq!(p.history_capacity(), Some(2));
        let q = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        for i in 0..5 {
            p.step(&[(ObjectId(1), Point::new(4.0 + 0.1 * i as f64, 4.0))]);
        }
        let h = p.history(q);
        // Only the last two samples are retained…
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].tick, 4);
        assert_eq!(h[1].tick, 5);
        // …but the aggregate folded all six (initial + five steps).
        assert_eq!(h.total(), 6);
        assert_eq!(h.stats().len(), 6);
    }

    #[test]
    fn localized_updates_skip_untouched_queries() {
        // Query cluster near the center; spectators in the far corner.
        let pts = [(5.0, 5.0), (4.5, 5.0), (5.5, 5.0), (9.5, 9.5), (9.0, 9.5)];
        let mut p = Processor::new(store(&pts, pts.len()));
        let h = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        assert!(!p.history(h)[0].skipped, "initial step always evaluates");
        // A far-corner move touches no watched cell: skipped, zero cost.
        p.step(&[(ObjectId(3), Point::new(9.4, 9.4))]);
        let s = p.history(h)[1];
        assert!(s.skipped);
        assert_eq!(s.elapsed, std::time::Duration::ZERO);
        assert_eq!(s.ops.nn + s.ops.nn_b + s.ops.verifications, 0);
        let objs: Vec<(ObjectId, Point)> = p.store().all().iter().collect();
        let want = naive::mono_rnn(&objs, Point::new(5.0, 5.0), Some(ObjectId(0)));
        assert_eq!(p.answer(h), want.as_slice(), "reused answer still right");
        // A candidate move lands in the watch: evaluated.
        p.step(&[(ObjectId(1), Point::new(4.4, 5.1))]);
        assert!(!p.history(h)[2].skipped);
        // Quiet tick: everything (even snapshots) skips.
        let t = p.add_query(ObjectId(0), Algorithm::TplRepeat);
        p.step(&[]);
        p.step(&[]);
        let th = p.history(t);
        assert!(th[th.len() - 1].skipped);
        assert!(p.history(h)[4].skipped);
    }

    #[test]
    fn disabling_skip_routing_forces_every_tick() {
        let pts = [(5.0, 5.0), (4.5, 5.0), (9.5, 9.5)];
        let mut p = Processor::new(store(&pts, 3));
        assert!(p.skip_routing());
        p.set_skip_routing(false);
        assert!(!p.skip_routing());
        let h = p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.evaluate_all();
        p.step(&[]);
        p.step(&[(ObjectId(2), Point::new(9.4, 9.4))]);
        assert!(p.history(h).iter().all(|s| !s.skipped));
    }

    #[test]
    fn routed_and_forced_processors_agree_over_a_stream() {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i * 7 % 30) as f64 / 3.0, (i * 11 % 30) as f64 / 3.0))
            .collect();
        let mk = |routing| {
            let mut p = Processor::new(store(&pts, 20));
            p.set_skip_routing(routing);
            p.add_query(ObjectId(0), Algorithm::IgernMono);
            p.add_query(ObjectId(0), Algorithm::Crnn);
            p.add_query(ObjectId(0), Algorithm::IgernBi);
            p.add_query(ObjectId(0), Algorithm::IgernMonoK(2));
            p.add_query(ObjectId(0), Algorithm::Knn(3));
            p.evaluate_all();
            p
        };
        let mut routed = mk(true);
        let mut forced = mk(false);
        let mut state = 77u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for tick in 0..30 {
            // Localized updates: only objects 20..30 (far half) move on
            // most ticks, so center queries get skippable ticks.
            let lo = if tick % 4 == 0 { 0 } else { 20 };
            let mut ups: Vec<(ObjectId, Point)> = Vec::new();
            for i in lo..30u32 {
                if rnd() < 0.5 {
                    let cur = routed.store().position(ObjectId(i)).unwrap();
                    ups.push((
                        ObjectId(i),
                        Point::new(
                            (cur.x + rnd() - 0.5).clamp(0.0, 10.0),
                            (cur.y + rnd() - 0.5).clamp(0.0, 10.0),
                        ),
                    ));
                }
            }
            routed.step(&ups);
            forced.step(&ups);
            for qi in 0..5 {
                assert_eq!(
                    routed.answer(qi),
                    forced.answer(qi),
                    "query {qi} tick {tick}"
                );
            }
        }
    }

    #[test]
    fn batched_processor_matches_per_query_processor() {
        let pts: Vec<(f64, f64)> = (0..30)
            .map(|i| ((i * 7 % 30) as f64 / 3.0, (i * 11 % 30) as f64 / 3.0))
            .collect();
        let mk = |batch| {
            let mut p = Processor::new(store(&pts, 20));
            p.set_batch(batch);
            assert_eq!(p.batch(), batch);
            p.add_query(ObjectId(0), Algorithm::IgernMono);
            p.add_query(ObjectId(0), Algorithm::IgernMonoK(2));
            p.add_query(ObjectId(0), Algorithm::IgernBi);
            p.add_query(ObjectId(0), Algorithm::IgernBiK(2));
            p.add_query(ObjectId(1), Algorithm::IgernMono);
            p.add_query(ObjectId(0), Algorithm::Crnn);
            p.evaluate_all();
            p
        };
        let mut plain = mk(false);
        let mut batched = mk(true);
        let mut state = 123u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for tick in 0..20 {
            let mut ups: Vec<(ObjectId, Point)> = Vec::new();
            for i in 0..30u32 {
                if rnd() < 0.4 {
                    let cur = plain.store().position(ObjectId(i)).unwrap();
                    ups.push((
                        ObjectId(i),
                        Point::new(
                            (cur.x + rnd() - 0.5).clamp(0.0, 10.0),
                            (cur.y + rnd() - 0.5).clamp(0.0, 10.0),
                        ),
                    ));
                }
            }
            if tick == 7 {
                plain.remove_query(4);
                batched.remove_query(4);
            }
            plain.step(&ups);
            batched.step(&ups);
            for qi in [0usize, 1, 2, 3, 5] {
                assert_eq!(
                    plain.answer(qi),
                    batched.answer(qi),
                    "query {qi} tick {tick}"
                );
                let (ph, bh) = (plain.history(qi), batched.history(qi));
                let (a, b) = (ph[ph.len() - 1], bh[bh.len() - 1]);
                assert_eq!(a.skipped, b.skipped, "query {qi} tick {tick}");
                assert_eq!(a.ops, b.ops, "query {qi} tick {tick}");
                assert_eq!(a.monitored, b.monitored, "query {qi} tick {tick}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "anchor of a live query")]
    fn cannot_remove_query_anchor() {
        let pts = [(5.0, 5.0), (4.0, 4.0)];
        let mut p = Processor::new(store(&pts, 2));
        p.add_query(ObjectId(0), Algorithm::IgernMono);
        p.remove_object(ObjectId(0));
    }

    #[test]
    #[should_panic(expected = "must be of kind A")]
    fn bichromatic_query_must_be_kind_a() {
        let pts = [(5.0, 5.0), (4.0, 4.0)];
        let mut p = Processor::new(store(&pts, 1));
        p.add_query(ObjectId(1), Algorithm::IgernBi);
    }
}
