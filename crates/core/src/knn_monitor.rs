//! Continuous k-nearest-neighbor monitoring.
//!
//! The paper's shared NN substrate is the conceptual-partitioning monitor
//! of Mouratidis et al. (SIGMOD'05, its reference \[17\]); this module
//! provides the continuous form of that facility so the processor can
//! host plain k-NN subscriptions next to the RNN monitors (the paper
//! positions IGERN among exactly such continuous query processors —
//! SINA, SEA-CNN, CPM).
//!
//! The monitor keeps the answer plus a **guard circle** of radius equal
//! to the k-th neighbor distance. Per tick it re-evaluates only when the
//! answer can actually have changed: the query moved, a current neighbor
//! moved, or some object now lies inside the guard circle that is not in
//! the answer. Otherwise the tick costs one bounded emptiness probe.

use igern_geom::Point;
use igern_grid::{
    exists_closer_than, k_nearest, k_nearest_into, Grid, Neighbor, ObjectId, OpCounters,
};

use crate::scratch::EvalScratch;

/// Continuous k-NN query state.
#[derive(Debug, Clone)]
pub struct KnnMonitor {
    k: usize,
    q_id: Option<ObjectId>,
    q: Point,
    /// Current answer, ascending by distance.
    answer: Vec<Neighbor>,
}

impl KnnMonitor {
    /// Initial evaluation.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn initial(
        grid: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
    ) -> Self {
        assert!(k >= 1, "k must be positive");
        ops.nn += 1;
        let answer = k_nearest(grid, q, k, q_id, ops);
        KnnMonitor { k, q_id, q, answer }
    }

    /// Per-tick maintenance with the query's current position.
    pub fn incremental(&mut self, grid: &Grid, q: Point, ops: &mut OpCounters) {
        self.incremental_in(grid, q, ops, &mut EvalScratch::default());
    }

    /// [`KnnMonitor::incremental`] with caller-provided evaluation
    /// scratch; a warm scratch makes the steady-state tick allocation-free.
    pub fn incremental_in(
        &mut self,
        grid: &Grid,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let q_moved = q != self.q;
        // Did a current neighbor move (or vanish)?
        let mut neighbor_moved = false;
        for n in &self.answer {
            match grid.position(n.id) {
                Some(p) if p == n.pos => {}
                _ => {
                    neighbor_moved = true;
                    break;
                }
            }
        }
        // Underfull answers (population < k) must watch for new arrivals.
        let underfull = self.answer.len() < self.k && grid.len() > self.answer.len();
        let mut dirty = q_moved || neighbor_moved || underfull;
        if !dirty {
            // Guard-circle probe: anything new strictly inside the k-th
            // distance invalidates the answer (the bounded check of
            // SEA-CNN). Exclude the current answer and the query itself.
            let radius_sq = self.answer.last().map(|n| n.dist_sq).unwrap_or(0.0);
            if radius_sq > 0.0 {
                let exclude = &mut scratch.ids;
                exclude.clear();
                exclude.extend(self.answer.iter().map(|n| n.id));
                if let Some(qid) = self.q_id {
                    exclude.push(qid);
                }
                ops.nn_b += 1;
                dirty = exists_closer_than(grid, q, radius_sq, exclude, ops);
            }
        }
        self.q = q;
        if dirty {
            ops.nn += 1;
            k_nearest_into(grid, q, self.k, self.q_id, ops, &mut scratch.neighbors);
            std::mem::swap(&mut self.answer, &mut scratch.neighbors);
        }
    }

    /// The current answer, ascending by distance.
    pub fn answer(&self) -> &[Neighbor] {
        &self.answer
    }

    /// Answer object ids, ascending by distance.
    pub fn ids(&self) -> Vec<ObjectId> {
        self.answer.iter().map(|n| n.id).collect()
    }

    /// The query order `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn oracle(g: &Grid, q: Point, q_id: Option<ObjectId>, k: usize) -> Vec<f64> {
        let mut d: Vec<f64> = g
            .iter()
            .filter(|&(id, _)| Some(id) != q_id)
            .map(|(_, p)| q.dist_sq(p))
            .collect();
        d.sort_by(f64::total_cmp);
        d.truncate(k);
        d
    }

    #[test]
    fn initial_is_exact() {
        let g = grid_with(&[(1.0, 1.0), (2.0, 2.0), (9.0, 9.0), (5.0, 4.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = KnnMonitor::initial(&g, q, None, 2, &mut ops);
        let got: Vec<f64> = m.answer().iter().map(|n| n.dist_sq).collect();
        assert_eq!(got, oracle(&g, q, None, 2));
    }

    #[test]
    fn long_random_run_matches_oracle() {
        let mut state = 71u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..50).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let mut g = grid_with(&pts);
        let mut q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = KnnMonitor::initial(&g, q, None, 5, &mut ops);
        for tick in 0..40 {
            for i in 0..50u32 {
                if rnd() < 0.25 {
                    let p = g.position(ObjectId(i)).unwrap();
                    g.update(
                        ObjectId(i),
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            q = Point::new(
                (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
            );
            m.incremental(&g, q, &mut ops);
            let got: Vec<f64> = m.answer().iter().map(|n| n.dist_sq).collect();
            assert_eq!(got, oracle(&g, q, None, 5), "tick {tick}");
        }
    }

    #[test]
    fn quiescent_ticks_are_single_probes() {
        let g = grid_with(&[(4.0, 5.0), (6.0, 5.0), (5.0, 7.0), (1.0, 1.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = KnnMonitor::initial(&g, q, None, 2, &mut ops);
        let before = m.ids();
        ops.reset();
        for _ in 0..5 {
            m.incremental(&g, q, &mut ops);
        }
        assert_eq!(m.ids(), before);
        assert_eq!(ops.nn, 0, "quiescent ticks must not re-evaluate");
        assert_eq!(ops.nn_b, 5, "one guard probe per tick");
    }

    #[test]
    fn intruder_inside_guard_circle_is_caught() {
        let mut g = grid_with(&[(4.0, 5.0), (7.0, 5.0), (1.0, 1.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = KnnMonitor::initial(&g, q, None, 2, &mut ops);
        assert_eq!(m.ids(), vec![ObjectId(0), ObjectId(1)]);
        // A far object dives inside the k-th distance; it is now the
        // closest, so it leads the distance-ordered answer.
        g.update(ObjectId(2), Point::new(5.5, 5.0));
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.ids(), vec![ObjectId(2), ObjectId(0)]);
    }

    #[test]
    fn underfull_population_grows_with_insertions() {
        let mut g = grid_with(&[(4.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = KnnMonitor::initial(&g, q, None, 3, &mut ops);
        assert_eq!(m.answer().len(), 1);
        g.insert(ObjectId(10), Point::new(6.0, 5.0));
        g.insert(ObjectId(11), Point::new(9.0, 9.0));
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.answer().len(), 3);
    }

    #[test]
    fn query_object_excluded() {
        let mut g = grid_with(&[(4.0, 5.0)]);
        g.insert(ObjectId(9), Point::new(5.0, 5.0));
        let mut ops = OpCounters::new();
        let m = KnnMonitor::initial(&g, Point::new(5.0, 5.0), Some(ObjectId(9)), 1, &mut ops);
        assert_eq!(m.ids(), vec![ObjectId(0)]);
    }
}
