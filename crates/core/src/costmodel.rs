//! The analytical cost model of Section 6, verbatim.
//!
//! All five cost functions are expressed over the same primitives: the
//! unit costs of an unconstrained (`NN`), constrained (`NN_c`), and
//! bounded (`NN_b`) nearest-neighbor search, plus the per-tick series
//! `r_t` (monochromatic candidates), `a_t` (monitored A-objects), and
//! `b_t` (B-objects in the monitored region). Feeding measured unit costs
//! and measured series into these formulas reproduces the paper's
//! analytical comparison (experiment E6); the inequalities the paper
//! argues (`IGERN ≤ CRNN` for `r_t ≤ 6`, etc.) are asserted in the tests.

/// Unit costs of the three search classes (arbitrary but consistent
/// units — e.g. visited objects, or microseconds).
#[derive(Debug, Clone, Copy)]
pub struct UnitCosts {
    /// Unconstrained NN (`NN`).
    pub nn: f64,
    /// Constrained NN (`NN_c`).
    pub nn_c: f64,
    /// Bounded NN (`NN_b`).
    pub nn_b: f64,
}

impl UnitCosts {
    /// A typical relation: bounded search is cheapest, constrained next,
    /// unconstrained most expensive over dense data.
    pub fn typical() -> Self {
        UnitCosts {
            nn: 1.0,
            nn_c: 0.8,
            nn_b: 0.3,
        }
    }
}

/// Monochromatic IGERN:
/// `mi(q) = r₀·(NN_c + NN) + Σ_{t=1..T} (NN_b + r_t·NN)`.
///
/// `r[t]` is the candidate count at tick `t` (`r[0]` at the initial step);
/// the query runs for `r.len() - 1` incremental ticks.
pub fn igern_mono_cost(u: &UnitCosts, r: &[f64]) -> f64 {
    assert!(!r.is_empty(), "need at least the initial tick");
    let init = r[0] * (u.nn_c + u.nn);
    let incr: f64 = r[1..].iter().map(|&rt| u.nn_b + rt * u.nn).sum();
    init + incr
}

/// CRNN: `C(q) = 6·(NN_c + NN) + Σ_{t=1..T} 6·(NN_b + NN)`.
pub fn crnn_cost(u: &UnitCosts, ticks: usize) -> f64 {
    assert!(ticks >= 1, "need at least the initial tick");
    6.0 * (u.nn_c + u.nn) + (ticks as f64 - 1.0) * 6.0 * (u.nn_b + u.nn)
}

/// Repetitive TPL: `L(q) = Σ_{t=0..T} r_t·(NN_c + NN)`.
pub fn tpl_cost(u: &UnitCosts, r: &[f64]) -> f64 {
    r.iter().map(|&rt| rt * (u.nn_c + u.nn)).sum()
}

/// Bichromatic IGERN:
/// `bi(q) = a₀·NN_c + b₀·NN + Σ_{t=1..T} (NN_b + b_t·NN)`.
///
/// `a[t]` / `b[t]` are the monitored-A and in-region-B counts per tick.
pub fn igern_bi_cost(u: &UnitCosts, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    assert!(!a.is_empty(), "need at least the initial tick");
    let init = a[0] * u.nn_c + b[0] * u.nn;
    let incr: f64 = b[1..].iter().map(|&bt| u.nn_b + bt * u.nn).sum();
    init + incr
}

/// Repetitive Voronoi: `V(q) = Σ_{t=0..T} (a_t·NN_c + b_t·NN)`.
pub fn voronoi_cost(u: &UnitCosts, a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "series must align");
    a.iter()
        .zip(b)
        .map(|(&at, &bt)| at * u.nn_c + bt * u.nn)
        .sum()
}

/// The paper's headline ratio `mi(q)/C(q)` (IGERN over CRNN).
pub fn mono_ratio_vs_crnn(u: &UnitCosts, r: &[f64]) -> f64 {
    igern_mono_cost(u, r) / crnn_cost(u, r.len())
}

/// The ratio `mi(q)/L(q)` (IGERN over repetitive TPL).
pub fn mono_ratio_vs_tpl(u: &UnitCosts, r: &[f64]) -> f64 {
    igern_mono_cost(u, r) / tpl_cost(u, r)
}

/// The ratio `bi(q)/V(q)` (bichromatic IGERN over repetitive Voronoi).
pub fn bi_ratio_vs_voronoi(u: &UnitCosts, a: &[f64], b: &[f64]) -> f64 {
    igern_bi_cost(u, a, b) / voronoi_cost(u, a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tick_ratio_is_r_over_six() {
        // "for any single time instance T, the ratio is r/6 if T = 0".
        let u = UnitCosts::typical();
        let r = vec![3.0];
        let ratio = mono_ratio_vs_crnn(&u, &r);
        assert!((ratio - 0.5).abs() < 1e-12);
    }

    #[test]
    fn igern_beats_crnn_when_r_below_six() {
        // "Since r_t ≤ 6, IGERN always achieves better performance than
        // CRNN" — for every tick count and any unit costs with the usual
        // ordering.
        let u = UnitCosts::typical();
        for ticks in 1..50 {
            let r = vec![3.5; ticks];
            assert!(
                igern_mono_cost(&u, &r) <= crnn_cost(&u, ticks) + 1e-9,
                "ticks = {ticks}"
            );
        }
    }

    #[test]
    fn igern_equals_tpl_at_first_tick() {
        // "the ratio is one if T = 0": both do r₀ constrained + r₀... the
        // paper's initial IGERN cost is r₀(NN_c + NN), same as TPL's t=0
        // term.
        let u = UnitCosts::typical();
        let r = vec![4.0];
        assert!((mono_ratio_vs_tpl(&u, &r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn igern_beats_tpl_over_time() {
        // The bounded incremental search replaces r_t constrained searches.
        let u = UnitCosts::typical();
        let r = vec![4.0; 20];
        assert!(igern_mono_cost(&u, &r) < tpl_cost(&u, &r));
        // And the gap grows with the horizon.
        let r_long = vec![4.0; 100];
        let gap_short = tpl_cost(&u, &r) - igern_mono_cost(&u, &r);
        let gap_long = tpl_cost(&u, &r_long) - igern_mono_cost(&u, &r_long);
        assert!(gap_long > gap_short);
    }

    #[test]
    fn bi_ratio_is_one_at_first_tick() {
        let u = UnitCosts::typical();
        let a = vec![5.0];
        let b = vec![7.0];
        assert!((bi_ratio_vs_voronoi(&u, &a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bi_igern_beats_voronoi_over_time() {
        // Incremental: one bounded search replaces a_t constrained ones.
        let u = UnitCosts::typical();
        let a = vec![5.0; 30];
        let b = vec![7.0; 30];
        assert!(igern_bi_cost(&u, &a, &b) < voronoi_cost(&u, &a, &b));
        assert!(bi_ratio_vs_voronoi(&u, &a, &b) < 1.0);
    }

    #[test]
    fn accumulated_savings_grow_linearly() {
        // Figures 8b / 10b: the accumulated-time gap widens with the
        // number of time slots.
        let u = UnitCosts::typical();
        let mut prev_gap = 0.0;
        for ticks in [10usize, 20, 40, 80] {
            let r = vec![3.0; ticks];
            let gap = crnn_cost(&u, ticks) - igern_mono_cost(&u, &r);
            assert!(gap > prev_gap, "gap must grow with horizon");
            prev_gap = gap;
        }
    }

    #[test]
    #[should_panic(expected = "series must align")]
    fn misaligned_series_rejected() {
        let u = UnitCosts::typical();
        voronoi_cost(&u, &[1.0], &[1.0, 2.0]);
    }
}
