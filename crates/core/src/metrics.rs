//! Per-tick measurement samples and experiment aggregation.
//!
//! Every experiment of Section 7 reports one of: CPU time per tick,
//! accumulated CPU time, average number of monitored objects, or grid
//! cell changes. [`TickSample`] carries all of them for one query-tick;
//! [`SeriesStats`] folds samples into the numbers the figures plot.

use std::time::Duration;

use igern_grid::OpCounters;

/// Measurements for one execution (initial or incremental) of one query.
#[derive(Debug, Clone, Copy, Default)]
pub struct TickSample {
    /// Tick index (0 = the initial step).
    pub tick: u64,
    /// Wall-clock time spent in the algorithm.
    pub elapsed: Duration,
    /// Operation counts (machine-independent cost).
    pub ops: OpCounters,
    /// Objects monitored after this tick (|RNNcand| / |NN_A| / pie count).
    pub monitored: usize,
    /// Answer size after this tick.
    pub answer_size: usize,
    /// Area of the monitored region after this tick (0 for algorithms
    /// without a persistent region).
    pub region_area: f64,
    /// The processor skipped evaluation this tick: no dirty cell
    /// intersected the query's watched cells, so the previous answer was
    /// reused at zero cost (`elapsed` and `ops` are zero; `monitored`,
    /// `answer_size`, and `region_area` carry over).
    pub skipped: bool,
}

/// Aggregate over many samples.
#[derive(Debug, Clone, Default)]
pub struct SeriesStats {
    samples: usize,
    total_time: Duration,
    total_ops: OpCounters,
    total_monitored: u64,
    total_answer: u64,
    total_area: f64,
    skipped: usize,
}

impl SeriesStats {
    /// An empty aggregate.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one sample in.
    pub fn push(&mut self, s: &TickSample) {
        self.samples += 1;
        self.total_time += s.elapsed;
        self.total_ops.merge(&s.ops);
        self.total_monitored += s.monitored as u64;
        self.total_answer += s.answer_size as u64;
        self.total_area += s.region_area;
        if s.skipped {
            self.skipped += 1;
        }
    }

    /// Number of samples folded.
    pub fn len(&self) -> usize {
        self.samples
    }

    /// Whether no samples were folded.
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }

    /// Total wall-clock time.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// Mean wall-clock time per sample.
    pub fn mean_time(&self) -> Duration {
        if self.samples == 0 {
            Duration::ZERO
        } else {
            // Divide in u128 nanoseconds: `Duration / u32` would silently
            // truncate the divisor above u32::MAX samples.
            let nanos = self.total_time.as_nanos() / self.samples as u128;
            Duration::new(
                (nanos / 1_000_000_000) as u64,
                (nanos % 1_000_000_000) as u32,
            )
        }
    }

    /// Mean number of monitored objects.
    pub fn mean_monitored(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_monitored as f64 / self.samples as f64
        }
    }

    /// Mean answer size.
    pub fn mean_answer(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_answer as f64 / self.samples as f64
        }
    }

    /// Mean monitored-region area.
    pub fn mean_area(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.total_area / self.samples as f64
        }
    }

    /// Samples the processor skipped via dirty-region routing.
    pub fn skipped(&self) -> usize {
        self.skipped
    }

    /// Samples that ran an actual evaluation.
    pub fn evaluated(&self) -> usize {
        self.samples - self.skipped
    }

    /// Fraction of samples skipped (0 when empty).
    pub fn skip_ratio(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.skipped as f64 / self.samples as f64
        }
    }

    /// Accumulated operation counts.
    pub fn ops(&self) -> &OpCounters {
        &self.total_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ms: u64, monitored: usize, answer: usize) -> TickSample {
        TickSample {
            tick: 0,
            elapsed: Duration::from_millis(ms),
            ops: OpCounters {
                nn: 1,
                ..Default::default()
            },
            monitored,
            answer_size: answer,
            region_area: 1.5,
            skipped: false,
        }
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = SeriesStats::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_time(), Duration::ZERO);
        assert_eq!(s.mean_monitored(), 0.0);
    }

    #[test]
    fn aggregation() {
        let mut s = SeriesStats::new();
        s.push(&sample(10, 3, 2));
        s.push(&sample(30, 5, 0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.total_time(), Duration::from_millis(40));
        assert_eq!(s.mean_time(), Duration::from_millis(20));
        assert_eq!(s.mean_monitored(), 4.0);
        assert_eq!(s.mean_answer(), 1.0);
        assert_eq!(s.mean_area(), 1.5);
        assert_eq!(s.ops().nn, 2);
    }

    #[test]
    fn mean_time_survives_huge_sample_counts() {
        // With more than u32::MAX samples the old `Duration / u32`
        // division truncated the divisor; the u128-nanos path must not.
        let samples = u32::MAX as usize + 7;
        let s = SeriesStats {
            samples,
            total_time: Duration::from_secs(samples as u64),
            ..Default::default()
        };
        assert_eq!(s.mean_time(), Duration::from_secs(1));
        // And the ordinary path still rounds down to whole nanos.
        let s = SeriesStats {
            samples: 3,
            total_time: Duration::from_nanos(10),
            ..Default::default()
        };
        assert_eq!(s.mean_time(), Duration::from_nanos(3));
    }

    #[test]
    fn skip_accounting() {
        let mut s = SeriesStats::new();
        s.push(&sample(10, 3, 2));
        s.push(&TickSample {
            skipped: true,
            ..Default::default()
        });
        assert_eq!(s.len(), 2);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.evaluated(), 1);
        assert_eq!(s.skip_ratio(), 0.5);
        assert_eq!(SeriesStats::new().skip_ratio(), 0.0);
    }
}
