//! Bounded per-query sample history: a ring buffer of recent
//! [`TickSample`]s plus an exact running [`SeriesStats`] aggregate.
//!
//! The processor used to keep an unbounded `Vec<TickSample>` per query,
//! which grows without limit on soak runs. [`History`] caps the *retained*
//! samples at a configurable capacity while the embedded [`SeriesStats`]
//! still folds **every** sample ever pushed, so summary metrics (mean
//! time, skip ratio, …) are identical whether or not old samples were
//! evicted. The default is unbounded, preserving the previous behavior.

use crate::metrics::{SeriesStats, TickSample};

/// A per-query tick-sample log with optional ring-buffer eviction.
///
/// Samples are indexed oldest-retained-first: `history[0]` is the oldest
/// sample still held, `history[history.len() - 1]` the newest.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Retained samples; a ring when `cap` is reached (`head` is the
    /// logical start).
    buf: Vec<TickSample>,
    head: usize,
    cap: Option<usize>,
    total: u64,
    stats: SeriesStats,
}

impl History {
    /// An unbounded history (every sample retained).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A history retaining at most `cap` samples (older ones are evicted
    /// first). `cap` must be at least 1.
    ///
    /// # Panics
    /// Panics when `cap == 0`.
    pub fn bounded(cap: usize) -> Self {
        assert!(cap >= 1, "history capacity must be at least 1");
        History {
            cap: Some(cap),
            ..Self::default()
        }
    }

    /// Build with an optional capacity (`None` = unbounded).
    pub fn with_capacity(cap: Option<usize>) -> Self {
        match cap {
            None => Self::unbounded(),
            Some(c) => Self::bounded(c),
        }
    }

    /// The configured retention capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.cap
    }

    /// Append a sample, evicting the oldest when at capacity. The
    /// aggregate stats fold the sample either way.
    pub fn push(&mut self, s: TickSample) {
        self.stats.push(&s);
        self.total += 1;
        match self.cap {
            Some(cap) if self.buf.len() == cap => {
                self.buf[self.head] = s;
                self.head = (self.head + 1) % cap;
            }
            _ => self.buf.push(s),
        }
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of samples ever pushed (≥ [`History::len`]).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Aggregate over **every** sample ever pushed, including evicted
    /// ones.
    pub fn stats(&self) -> &SeriesStats {
        &self.stats
    }

    /// The newest sample.
    pub fn latest(&self) -> Option<&TickSample> {
        self.get(self.buf.len().wrapping_sub(1))
    }

    /// Retained sample at logical index `i` (0 = oldest retained).
    pub fn get(&self, i: usize) -> Option<&TickSample> {
        if i >= self.buf.len() {
            return None;
        }
        Some(&self.buf[(self.head + i) % self.buf.len().max(1)])
    }

    /// Iterate retained samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TickSample> + '_ {
        (0..self.buf.len()).map(move |i| self.get(i).expect("index in range"))
    }
}

impl std::ops::Index<usize> for History {
    type Output = TickSample;

    fn index(&self, i: usize) -> &TickSample {
        self.get(i).expect("history index out of range")
    }
}

impl<'a> IntoIterator for &'a History {
    type Item = &'a TickSample;
    type IntoIter = Box<dyn Iterator<Item = &'a TickSample> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample(tick: u64) -> TickSample {
        TickSample {
            tick,
            elapsed: Duration::from_millis(tick),
            answer_size: tick as usize,
            ..TickSample::default()
        }
    }

    #[test]
    fn unbounded_retains_everything() {
        let mut h = History::unbounded();
        assert!(h.is_empty());
        assert_eq!(h.capacity(), None);
        for t in 0..10 {
            h.push(sample(t));
        }
        assert_eq!(h.len(), 10);
        assert_eq!(h.total(), 10);
        assert_eq!(h[0].tick, 0);
        assert_eq!(h[9].tick, 9);
        assert_eq!(h.latest().unwrap().tick, 9);
        let ticks: Vec<u64> = h.iter().map(|s| s.tick).collect();
        assert_eq!(ticks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_evicts_oldest_but_stats_fold_all() {
        let mut h = History::bounded(3);
        for t in 0..10 {
            h.push(sample(t));
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.total(), 10);
        let ticks: Vec<u64> = h.iter().map(|s| s.tick).collect();
        assert_eq!(ticks, vec![7, 8, 9], "oldest → newest after eviction");
        assert_eq!(h[0].tick, 7);
        assert_eq!(h.latest().unwrap().tick, 9);
        assert!(h.get(3).is_none());
        // Stats saw all ten samples, not just the retained three.
        assert_eq!(h.stats().len(), 10);
        assert_eq!(h.stats().total_time(), Duration::from_millis(45));
        assert_eq!(h.stats().mean_answer(), 4.5);
    }

    #[test]
    fn capacity_one_keeps_only_latest() {
        let mut h = History::with_capacity(Some(1));
        h.push(sample(1));
        h.push(sample(2));
        assert_eq!(h.len(), 1);
        assert_eq!(h[0].tick, 2);
        assert_eq!(h.stats().len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        History::bounded(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let h = History::unbounded();
        let _ = h[0];
    }
}
