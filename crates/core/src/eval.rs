//! The per-query evaluation step, factored out of the processor so every
//! execution engine — the serial [`Processor`], its scoped-thread
//! `step_parallel`, and the sharded `igern-engine` worker pool — runs the
//! exact same code path and therefore produces bit-identical answers,
//! skip decisions, and deterministic metrics.
//!
//! [`Processor`]: crate::processor::Processor

use std::time::Instant;

use igern_geom::Point;
use igern_grid::{ObjectId, OpCounters};

use crate::batch::Feeds;
use crate::metrics::TickSample;
use crate::monitor::ContinuousMonitor;
use crate::scratch::EvalScratch;
use crate::store::SpatialStore;

/// One standing query's evaluator state: the anchor object, the boxed
/// monitor, and the latest derived results. Owns no history — the engine
/// driving it decides where samples go.
pub struct QuerySlot {
    /// The moving object acting as the query.
    pub obj: ObjectId,
    /// The evaluation strategy.
    pub monitor: Box<dyn ContinuousMonitor>,
    /// The monitor has had its initial evaluation.
    pub initialized: bool,
    /// Latest answer, sorted by object id.
    pub answer: Vec<ObjectId>,
    /// Objects monitored after the latest evaluation.
    pub monitored: usize,
    /// Monitored-region area after the latest evaluation.
    pub region_area: f64,
}

impl QuerySlot {
    /// A fresh (uninitialized) slot for a query anchored at `obj`.
    pub fn new(obj: ObjectId, monitor: Box<dyn ContinuousMonitor>) -> Self {
        QuerySlot {
            obj,
            monitor,
            initialized: false,
            // Headroom so small per-tick answer fluctuations never regrow
            // the buffer mid-stream.
            answer: Vec::with_capacity(16),
            monitored: 0,
            region_area: 0.0,
        }
    }
}

/// The skip decision: may `slot` keep its previous answer this tick?
///
/// Sound only because every store mutation dirties the touched cells of
/// the all-objects grid (a superset of the A/B dirt) and each monitor's
/// watch set is a conservative closure of the cells its next incremental
/// step reads (see [`crate::monitor`]). The anchor cell is always checked
/// so a move of the query object itself — or of a neighbor sharing its
/// cell — forces re-evaluation.
pub fn can_skip(store: &SpatialStore, slot: &QuerySlot, anchor: igern_geom::Point) -> bool {
    if !slot.initialized {
        return false;
    }
    let dirty = store.dirty_all();
    if dirty.contains(store.all().cell_of_point(anchor)) {
        return false;
    }
    match slot.monitor.monitored_cells() {
        None => dirty.is_empty(),
        Some(watch) => !dirty.intersects(watch),
    }
}

/// Evaluate one query against the current store state and return its
/// sample for tick `tick`. With `route` set, the dirty-region skip check
/// runs first and a zero-cost skipped sample is returned when the
/// previous answer is provably still valid.
///
/// This is *the* per-query step shared by every execution engine; it only
/// reads `store` (plus the slot it mutates), so disjoint slots can be
/// evaluated concurrently against the same frozen store.
///
/// A slot whose anchor object has vanished from the store (a desync — the
/// engine should have removed the query first) degrades gracefully: the
/// previous answer is carried over as a skipped sample whose
/// `ops.desyncs` is set, so the event is counted instead of panicking
/// mid-tick.
///
/// `scratch` is the execution lane's reusable evaluation workspace; a warm
/// scratch makes the steady-state tick allocation-free. Lanes must not
/// share one scratch concurrently, but any slot may be evaluated with any
/// lane's scratch — the answer does not depend on the scratch contents.
pub fn evaluate_query(
    store: &SpatialStore,
    slot: &mut QuerySlot,
    tick: u64,
    route: bool,
    scratch: &mut EvalScratch,
) -> TickSample {
    match presample(store, slot, tick, route) {
        Presample::Done(sample) => sample,
        Presample::Evaluate(pos) => evaluate_at(store, slot, pos, tick, scratch, Feeds::default()),
    }
}

/// Outcome of the pre-evaluation checks (desync and skip routing): either
/// the tick's sample is already decided, or the monitor must run against
/// the query's resolved position.
pub enum Presample {
    /// The sample is final — the anchor desynced or the skip check passed.
    Done(TickSample),
    /// The monitor must evaluate at this (resolved) query position.
    Evaluate(Point),
}

/// The desync/skip prefix of [`evaluate_query`], split out so the batch
/// evaluator can group the queries that actually need evaluation by their
/// anchor cell first. Calling [`presample`] then [`evaluate_at`] on
/// `Evaluate` is exactly [`evaluate_query`].
pub fn presample(store: &SpatialStore, slot: &QuerySlot, tick: u64, route: bool) -> Presample {
    let Some(pos) = store.position(slot.obj) else {
        let mut ops = OpCounters::new();
        ops.desyncs = 1;
        return Presample::Done(TickSample {
            tick,
            ops,
            monitored: slot.monitored,
            answer_size: slot.answer.len(),
            region_area: slot.region_area,
            skipped: true,
            ..TickSample::default()
        });
    };
    if route && can_skip(store, slot, pos) {
        // Zero-cost sample: the previous answer is reused verbatim.
        return Presample::Done(TickSample {
            tick,
            monitored: slot.monitored,
            answer_size: slot.answer.len(),
            region_area: slot.region_area,
            skipped: true,
            ..TickSample::default()
        });
    }
    Presample::Evaluate(pos)
}

/// The evaluation suffix of [`evaluate_query`]: run the monitor at `pos`
/// and refresh the slot's derived results. `feeds` carries the batch
/// evaluator's shared-scan caches; `Feeds::default()` (no feeds) gives the
/// plain per-query path, and any feed state yields bit-identical answers
/// and counters (unprimed cells fall back to direct grid reads).
pub fn evaluate_at(
    store: &SpatialStore,
    slot: &mut QuerySlot,
    pos: Point,
    tick: u64,
    scratch: &mut EvalScratch,
    feeds: Feeds<'_>,
) -> TickSample {
    let mut ops = OpCounters::new();
    let start = Instant::now();
    if slot.initialized {
        slot.monitor
            .incremental_feed(store, pos, feeds, &mut ops, scratch);
    } else {
        slot.monitor
            .initial_feed(store, pos, feeds, &mut ops, scratch);
        slot.initialized = true;
    }
    let elapsed = start.elapsed();
    slot.monitor.answer_into(&mut slot.answer);
    slot.monitored = slot.monitor.num_monitored();
    slot.region_area = slot.monitor.region_area(store);
    TickSample {
        tick,
        elapsed,
        ops,
        monitored: slot.monitored,
        answer_size: slot.answer.len(),
        region_area: slot.region_area,
        skipped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processor::Algorithm;
    use crate::types::ObjectKind;
    use igern_geom::{Aabb, Point};

    fn store(points: &[(f64, f64)]) -> SpatialStore {
        let kinds = vec![ObjectKind::A; points.len()];
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        let pts: Vec<Point> = points.iter().map(|&(x, y)| Point::new(x, y)).collect();
        s.load(&pts);
        s
    }

    #[test]
    fn initial_then_incremental_then_skip() {
        let mut s = store(&[(5.0, 5.0), (4.0, 5.0), (9.5, 9.5)]);
        s.drain_dirty();
        let mut slot = QuerySlot::new(
            ObjectId(0),
            Algorithm::IgernMono.make_monitor(Some(ObjectId(0))),
        );
        let mut scratch = EvalScratch::default();
        // Uninitialized slots never skip, even on a quiet store.
        assert!(!can_skip(&s, &slot, Point::new(5.0, 5.0)));
        let s0 = evaluate_query(&s, &mut slot, 0, true, &mut scratch);
        assert!(!s0.skipped);
        assert!(slot.initialized);
        // Both neighbors have the query as their nearest object.
        assert_eq!(slot.answer, vec![ObjectId(1), ObjectId(2)]);
        s.drain_dirty();
        // Quiet tick: routed evaluation skips, carrying the answer over.
        let s1 = evaluate_query(&s, &mut slot, 1, true, &mut scratch);
        assert!(s1.skipped);
        assert_eq!(s1.answer_size, 2);
        assert_eq!(s1.tick, 1);
        // Forced evaluation never skips.
        let s2 = evaluate_query(&s, &mut slot, 2, false, &mut scratch);
        assert!(!s2.skipped);
        // A move in the watched region forces routed re-evaluation.
        s.apply(ObjectId(1), Point::new(4.2, 5.0));
        let s3 = evaluate_query(&s, &mut slot, 3, true, &mut scratch);
        assert!(!s3.skipped);
    }
}
