//! Reusable evaluation scratch — the heap-buffer pool threaded through
//! every [`ContinuousMonitor`] evaluation so steady-state ticks allocate
//! nothing.
//!
//! One `EvalScratch` lives per execution lane (the serial processor owns
//! one, each engine worker owns one, each scoped thread of the parallel
//! step owns one). The buffers inside are written-then-read within a
//! single evaluation; nothing in them carries meaning across calls, so a
//! scratch can be shared freely between queries and algorithms on the
//! same lane.
//!
//! [`ContinuousMonitor`]: crate::monitor::ContinuousMonitor

use igern_geom::Point;
use igern_grid::{CellOrderScratch, CellSet, Neighbor, ObjectId};

use crate::netspace::NetScratch;
use crate::prune::PruneScratch;

/// Per-lane scratch buffers for monitor evaluation.
///
/// Fields are public so algorithm internals can borrow disjoint buffers
/// simultaneously (e.g. staging sites in [`sites`] while redrawing into
/// [`prune`]).
///
/// [`sites`]: EvalScratch::sites
/// [`prune`]: EvalScratch::prune
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Polygon rings, bisector staging, and cleaning marks for the
    /// alive-region redraw and candidate cleaning.
    pub prune: PruneScratch,
    /// Mindist ordering for constrained (alive-cell) NN searches.
    pub cell_order: CellOrderScratch,
    /// Candidate/site position staging for bisector redraws.
    pub sites: Vec<Point>,
    /// Object-id staging (exclude lists, candidate closures).
    pub ids: Vec<ObjectId>,
    /// `(id, position)` staging (bichromatic verification sweeps).
    pub pairs: Vec<(ObjectId, Point)>,
    /// Neighbor staging for k-NN searches.
    pub neighbors: Vec<Neighbor>,
    /// Alive-region staging for snapshot baselines (TPL).
    pub alive: CellSet,
    /// Network-distance state: memoized Dijkstra expansions and the
    /// expansion heap. Unlike the buffers above, the memo *does* carry
    /// meaning across calls — the graph is static, so cached expansions
    /// stay valid for the lane's lifetime (and results never depend on
    /// which entries happen to be warm).
    pub net: NetScratch,
}

impl EvalScratch {
    /// A fresh scratch with empty buffers; they warm up on first use.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}
