//! Anchor-cell batch/shared evaluation.
//!
//! The per-query path re-derives a near-identical expanding-ring scan for
//! every standing query: co-located queries of the same algorithm walk the
//! same cells and re-gather the same object positions tick after tick.
//! [`BatchEvaluator`] groups the live, non-skipped queries of one tick by
//! `(algorithm class, anchor cell)` — the [`BatchClass`] key — and runs
//! **one** ring-ordered priming pass per group that loads every cell the
//! group will read into a [`CellFeed`]. Each member then evaluates against
//! the shared feed: one position gather per cell per group, instead of one
//! per member.
//!
//! # Equivalence invariants
//!
//! Batched evaluation is a pure execution-plan change; the gates that keep
//! it bit-identical to the per-query path at any worker count:
//!
//! * **Feed replay** — a primed cell stores its bucket in exact bucket
//!   order (desynced entries included), and every `*_feed` NN kernel
//!   replays it with the same visit sequence and the same counter
//!   increments as a direct grid scan ([`CellFeed`]).
//! * **Fallback** — a cell the priming pass did not cover reads the grid
//!   directly inside the kernels. The store is frozen during evaluation,
//!   so the feed and the grid agree; incomplete priming costs performance,
//!   never correctness.
//! * **Order** — skip decisions are taken in lane order before any
//!   evaluation runs (the dirty-set skip check reads only pre-tick state),
//!   and each member evaluates against its own monitor exactly as the
//!   per-query path would.
//!
//! Together these make the feed a read-through cache of the frozen grids,
//! which is why answers, op counters, and skip decisions cannot diverge.

use igern_geom::Point;
use igern_grid::{
    visit::{max_ring_radius, ring_cells},
    CellFeed, CellId, CellSet,
};

use crate::eval::{evaluate_at, presample, Presample, QuerySlot};
use crate::metrics::TickSample;
use crate::scratch::EvalScratch;
use crate::store::SpatialStore;

/// The shared-scan caches handed to a monitor evaluation. Mono monitors
/// read `all` (the all-objects grid); bichromatic monitors read `a`/`b`.
/// `Feeds::default()` — no feeds — is the plain per-query path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Feeds<'f> {
    /// Feed over the all-objects grid.
    pub all: Option<&'f CellFeed>,
    /// Feed over the A-grid.
    pub a: Option<&'f CellFeed>,
    /// Feed over the B-grid.
    pub b: Option<&'f CellFeed>,
}

/// Batch-grouping class: queries share a scan only when they run the same
/// algorithm at the same order `k` (their monitors read the same grids
/// with the same candidate logic) and anchor in the same cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BatchClass {
    /// Monochromatic RNN (IGERN).
    MonoRnn,
    /// Monochromatic RkNN at order `k`.
    MonoRknn(usize),
    /// Bichromatic RNN (IGERN).
    BiRnn,
    /// Bichromatic RkNN at order `k`.
    BiRknn(usize),
}

impl BatchClass {
    /// Whether the class evaluates against the A-/B-grids (vs. the
    /// all-objects grid).
    fn is_bichromatic(self) -> bool {
        matches!(self, BatchClass::BiRnn | BatchClass::BiRknn(_))
    }
}

/// A lane of query slots the batch evaluator can run: the serial
/// processor's query vector or an engine worker's shard. Indices are
/// stable for the duration of one [`BatchEvaluator::run`]; `None` marks a
/// hole (e.g. a removed query) that produces no sample.
pub trait SlotLane {
    /// Number of lane positions (including holes).
    fn len(&self) -> usize;

    /// Whether the lane has no positions.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot at lane position `i`, or `None` for a hole.
    fn slot(&mut self, i: usize) -> Option<&mut QuerySlot>;
}

/// One planned (non-skipped, batchable) evaluation.
#[derive(Debug, Clone, Copy)]
struct PlanEntry {
    class: BatchClass,
    cell: CellId,
    idx: u32,
    pos: Point,
}

/// The shared-scan batch evaluator. Owns the per-tick feeds, the grouping
/// plan, and the output samples; all buffers persist across ticks so the
/// steady-state batched tick allocates nothing.
#[derive(Debug, Default)]
pub struct BatchEvaluator {
    feed_all: CellFeed,
    feed_a: CellFeed,
    feed_b: CellFeed,
    plan: Vec<PlanEntry>,
    /// Union of a group's watch sets: the cells its members may read,
    /// primed in ring order from the anchor cell.
    watch: CellSet,
    out: Vec<Option<TickSample>>,
    groups: u64,
    members: u64,
}

impl BatchEvaluator {
    /// A fresh evaluator; buffers are sized lazily on the first run.
    pub fn new() -> Self {
        BatchEvaluator::default()
    }

    /// Evaluate every slot of `lane` for tick `tick`, sharing one priming
    /// scan per `(class, anchor cell)` group. Semantically identical to
    /// calling [`crate::eval::evaluate_query`] on each slot in lane order;
    /// results land in [`BatchEvaluator::samples`] by lane index.
    ///
    /// Two passes: first presample every slot in lane order (desync and
    /// skip samples are final; unbatchable monitors evaluate inline), then
    /// sort the batchable remainder by `(class, cell, lane index)` and run
    /// each group — multi-member groups prime the feeds over the union of
    /// their watch sets before their members evaluate.
    pub fn run<L: SlotLane>(
        &mut self,
        store: &SpatialStore,
        lane: &mut L,
        tick: u64,
        route: bool,
        scratch: &mut EvalScratch,
    ) {
        let n = lane.len();
        self.out.clear();
        self.out.resize(n, None);
        self.plan.clear();
        self.groups = 0;
        self.members = 0;
        self.feed_all.begin(store.all().num_cells());
        self.feed_a.begin(store.grid_a().num_cells());
        self.feed_b.begin(store.grid_b().num_cells());

        // Pass 1: presample in lane order; plan the batchable evaluations.
        for i in 0..n {
            let Some(slot) = lane.slot(i) else { continue };
            match presample(store, slot, tick, route) {
                Presample::Done(sample) => self.out[i] = Some(sample),
                Presample::Evaluate(pos) => match slot.monitor.batch_class() {
                    Some(class) => self.plan.push(PlanEntry {
                        class,
                        cell: store.all().cell_of_point(pos),
                        idx: i as u32,
                        pos,
                    }),
                    None => {
                        self.out[i] = Some(evaluate_at(
                            store,
                            slot,
                            pos,
                            tick,
                            scratch,
                            Feeds::default(),
                        ));
                    }
                },
            }
        }

        // Pass 2: group and evaluate. The sort key ends with the lane
        // index so members evaluate in lane order within their group.
        self.plan.sort_unstable_by_key(|e| (e.class, e.cell, e.idx));
        let mut g = 0;
        while g < self.plan.len() {
            let (class, cell) = (self.plan[g].class, self.plan[g].cell);
            let mut h = g + 1;
            while h < self.plan.len() && self.plan[h].class == class && self.plan[h].cell == cell {
                h += 1;
            }
            if h - g == 1 {
                // Singleton: nothing to share, so skip the priming cost
                // and run the plain path (feeds only affect performance).
                let e = self.plan[g];
                let slot = lane.slot(e.idx as usize).expect("planned slot vanished");
                self.out[e.idx as usize] = Some(evaluate_at(
                    store,
                    slot,
                    e.pos,
                    tick,
                    scratch,
                    Feeds::default(),
                ));
            } else {
                self.groups += 1;
                self.members += (h - g) as u64;
                self.run_group(store, lane, tick, scratch, g, h, class, cell);
            }
            g = h;
        }
    }

    /// Prime the feeds over a multi-member group's read closure, then
    /// evaluate its members against the shared feeds.
    #[allow(clippy::too_many_arguments)]
    fn run_group<L: SlotLane>(
        &mut self,
        store: &SpatialStore,
        lane: &mut L,
        tick: u64,
        scratch: &mut EvalScratch,
        g: usize,
        h: usize,
        class: BatchClass,
        cell: CellId,
    ) {
        // The cells the group may read: the union of the members' watch
        // sets plus the anchor cell. An uninitialized member publishes no
        // watch set; cells it reads beyond the union fall back to direct
        // grid reads inside the kernels.
        let grid = store.all();
        if self.watch.capacity() == grid.num_cells() {
            self.watch.clear();
        } else {
            self.watch = CellSet::new(grid.num_cells());
        }
        for e in &self.plan[g..h] {
            if let Some(slot) = lane.slot(e.idx as usize) {
                if let Some(w) = slot.monitor.monitored_cells() {
                    self.watch.union_with(w);
                }
            }
        }
        self.watch.insert(cell);

        // One ring-ordered priming sweep from the anchor cell, stopping
        // as soon as every watched cell is cached. Rings partition the
        // grid, so the sweep terminates with exactly the watch primed.
        let (cx, cy) = grid.cell_coords(cell);
        let target = self.watch.count();
        let mut primed = 0usize;
        'sweep: for r in 0..=max_ring_radius(grid, cx, cy) {
            for c in ring_cells(grid, cx, cy, r) {
                if !self.watch.contains(c) {
                    continue;
                }
                if class.is_bichromatic() {
                    self.feed_a.prime(store.grid_a(), c);
                    self.feed_b.prime(store.grid_b(), c);
                } else {
                    self.feed_all.prime(grid, c);
                }
                primed += 1;
                if primed == target {
                    break 'sweep;
                }
            }
        }

        let feeds = if class.is_bichromatic() {
            Feeds {
                all: None,
                a: Some(&self.feed_a),
                b: Some(&self.feed_b),
            }
        } else {
            Feeds {
                all: Some(&self.feed_all),
                a: None,
                b: None,
            }
        };
        for e in &self.plan[g..h] {
            let slot = lane.slot(e.idx as usize).expect("planned slot vanished");
            self.out[e.idx as usize] = Some(evaluate_at(store, slot, e.pos, tick, scratch, feeds));
        }
    }

    /// The samples of the last [`BatchEvaluator::run`], by lane index;
    /// `None` at lane holes.
    pub fn samples(&self) -> &[Option<TickSample>] {
        &self.out
    }

    /// Multi-member groups formed in the last run.
    pub fn groups(&self) -> u64 {
        self.groups
    }

    /// Members that evaluated through a shared scan in the last run.
    pub fn members(&self) -> u64 {
        self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_query;
    use crate::processor::Algorithm;
    use crate::types::ObjectKind;
    use igern_geom::Aabb;
    use igern_grid::ObjectId;

    struct VecLane(Vec<QuerySlot>);

    impl SlotLane for VecLane {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn slot(&mut self, i: usize) -> Option<&mut QuerySlot> {
            self.0.get_mut(i)
        }
    }

    fn store(n: usize, seed: u64) -> SpatialStore {
        let mut state = seed;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let kinds: Vec<ObjectKind> = (0..n)
            .map(|i| {
                if i % 3 == 0 {
                    ObjectKind::B
                } else {
                    ObjectKind::A
                }
            })
            .collect();
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        let pts: Vec<Point> = (0..n).map(|_| Point::new(rnd(), rnd())).collect();
        s.load(&pts);
        s
    }

    /// Clustered queries across every batchable class must produce
    /// bit-identical samples (answers, counters, skip flags) to the
    /// per-query path, initial tick and incremental ticks alike.
    #[test]
    fn batched_run_matches_per_query_evaluation() {
        let mut s = store(120, 7);
        let algos = [
            Algorithm::IgernMono,
            Algorithm::IgernMonoK(2),
            Algorithm::IgernBi,
            Algorithm::IgernBiK(2),
            Algorithm::Crnn, // unbatchable: exercises the inline path
        ];
        // Two queries per algorithm anchored on A-objects near each other
        // so anchor cells collide and groups actually form.
        let anchors: Vec<ObjectId> = (0..s.len() as u32)
            .map(ObjectId)
            .filter(|&id| s.kind(id) == ObjectKind::A)
            .take(algos.len() * 2)
            .collect();
        let mk = || {
            anchors
                .iter()
                .enumerate()
                .map(|(i, &id)| QuerySlot::new(id, algos[i % algos.len()].make_monitor(Some(id))))
                .collect::<Vec<_>>()
        };
        let mut plain = mk();
        let mut lane = VecLane(mk());
        let mut scratch = EvalScratch::default();
        let mut batch = BatchEvaluator::new();
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for tick in 0..12 {
            batch.run(&s, &mut lane, tick, true, &mut scratch);
            for (i, slot) in plain.iter_mut().enumerate() {
                let want = evaluate_query(&s, slot, tick, true, &mut scratch);
                let got = batch.samples()[i].expect("sample for every slot");
                assert_eq!(got.ops, want.ops, "tick {tick} slot {i}");
                assert_eq!(got.skipped, want.skipped, "tick {tick} slot {i}");
                assert_eq!(got.answer_size, want.answer_size, "tick {tick} slot {i}");
                assert_eq!(got.monitored, want.monitored, "tick {tick} slot {i}");
                assert_eq!(
                    lane.0[i].answer, slot.answer,
                    "tick {tick} slot {i} answers diverge"
                );
            }
            // Jitter a third of the objects for the next tick.
            s.drain_dirty();
            for id in 0..s.len() as u32 {
                if rnd() < 0.33 {
                    if let Some(p) = s.position(ObjectId(id)) {
                        s.apply(
                            ObjectId(id),
                            Point::new(
                                (p.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                                (p.y + (rnd() - 0.5)).clamp(0.0, 10.0),
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Same-cell same-class queries form shared-scan groups.
    #[test]
    fn co_located_queries_share_a_group() {
        let kinds = vec![ObjectKind::A; 6];
        let mut s = SpatialStore::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8, kinds);
        // Three queries in one cell, plus scattered non-query objects.
        s.load(&[
            Point::new(5.0, 5.0),
            Point::new(5.1, 5.1),
            Point::new(5.2, 5.0),
            Point::new(2.0, 8.0),
            Point::new(8.0, 2.0),
            Point::new(1.0, 1.0),
        ]);
        let mut lane = VecLane(
            (0..3)
                .map(|i| {
                    QuerySlot::new(
                        ObjectId(i),
                        Algorithm::IgernMono.make_monitor(Some(ObjectId(i))),
                    )
                })
                .collect(),
        );
        let mut batch = BatchEvaluator::new();
        let mut scratch = EvalScratch::default();
        batch.run(&s, &mut lane, 0, false, &mut scratch);
        assert_eq!(batch.groups(), 1, "one anchor cell, one class");
        assert_eq!(batch.members(), 3);
        assert!(batch.samples().iter().all(|s| s.is_some()));
    }

    /// Lane holes produce no sample and break nothing.
    #[test]
    fn lane_holes_are_skipped() {
        struct HoleyLane(Vec<Option<QuerySlot>>);
        impl SlotLane for HoleyLane {
            fn len(&self) -> usize {
                self.0.len()
            }
            fn slot(&mut self, i: usize) -> Option<&mut QuerySlot> {
                self.0.get_mut(i).and_then(|s| s.as_mut())
            }
        }
        let s = store(40, 11);
        let anchor = (0..40u32)
            .map(ObjectId)
            .find(|&id| s.kind(id) == ObjectKind::A)
            .unwrap();
        let mut lane = HoleyLane(vec![
            None,
            Some(QuerySlot::new(
                anchor,
                Algorithm::IgernMono.make_monitor(Some(anchor)),
            )),
            None,
        ]);
        let mut batch = BatchEvaluator::new();
        batch.run(&s, &mut lane, 0, false, &mut EvalScratch::default());
        assert!(batch.samples()[0].is_none());
        assert!(batch.samples()[1].is_some());
        assert!(batch.samples()[2].is_none());
    }
}
