//! Continuous monochromatic **reverse k-nearest neighbors** — the
//! generalization the paper's journal version develops (an object `o` is
//! an RkNN of `q` iff `q` is among `o`'s `k` nearest objects, i.e. fewer
//! than `k` objects lie strictly closer to `o` than `q`).
//!
//! The framework generalizes component-wise:
//!
//! * **dominance** becomes order-`k`: an object is out of the running
//!   only when ≥ `k` monitored candidates are strictly closer to it than
//!   the query;
//! * the **alive region** becomes the order-`k` region: a cell dies only
//!   when ≥ `k` bisectors fully exclude it (a union of half-plane
//!   intersections — no longer convex, so the redraw scans the grid
//!   densely, see [`recompute_alive_k`]);
//! * **verification** counts blockers with a capped range count instead
//!   of an emptiness test;
//! * the candidate bound becomes `6k` (at most `k` greedily-inserted
//!   candidates survive per 60° pie, by the same lemma as `k = 1`).

use igern_geom::Point;
use igern_grid::{
    count_closer_than_feed, nearest_feed, nearest_in_cells_with_feed, CellFeed, CellSet, Grid,
    ObjectId, OpCounters,
};

use crate::prune::{clean_dominated_k_with, recompute_alive_k_into};
use crate::scratch::EvalScratch;

/// Continuous monochromatic RkNN query state.
#[derive(Debug, Clone)]
pub struct MonoIgernK {
    k: usize,
    q_id: Option<ObjectId>,
    q: Point,
    alive: CellSet,
    cand: Vec<(Point, ObjectId)>,
    rnn: Vec<ObjectId>,
    stale: bool,
}

impl MonoIgernK {
    /// Initial step for a reverse k-NN query.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn initial(
        grid: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
    ) -> Self {
        Self::initial_in(grid, q, q_id, k, ops, &mut EvalScratch::default())
    }

    /// [`MonoIgernK::initial`] with caller-provided evaluation scratch.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn initial_in(
        grid: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        Self::initial_in_feed(grid, None, q, q_id, k, ops, scratch)
    }

    /// [`MonoIgernK::initial_in`] reading primed cells from `feed` (the
    /// batch evaluator's shared-scan cache); bit-identical to the
    /// `None`-feed form.
    ///
    /// # Panics
    /// Panics when `k == 0`.
    pub fn initial_in_feed(
        grid: &Grid,
        feed: Option<&CellFeed>,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        assert!(k >= 1, "k must be positive");
        let mut state = MonoIgernK {
            k,
            q_id,
            q,
            alive: CellSet::full(grid.num_cells()),
            cand: Vec::new(),
            rnn: Vec::new(),
            stale: false,
        };
        state.tighten(grid, feed, ops, true, scratch);
        state.verify(grid, feed, ops);
        state
    }

    /// Incremental step, run every Δt with the query's current position.
    pub fn incremental(&mut self, grid: &Grid, q: Point, ops: &mut OpCounters) {
        self.incremental_in(grid, q, ops, &mut EvalScratch::default());
    }

    /// [`MonoIgernK::incremental`] with caller-provided evaluation
    /// scratch; a warm scratch makes the steady-state tick allocation-free.
    pub fn incremental_in(
        &mut self,
        grid: &Grid,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_in_feed(grid, None, q, ops, scratch);
    }

    /// [`MonoIgernK::incremental_in`] reading primed cells from `feed`;
    /// see [`MonoIgernK::initial_in_feed`].
    pub fn incremental_in_feed(
        &mut self,
        grid: &Grid,
        feed: Option<&CellFeed>,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let q_moved = q != self.q;
        let mut cand_moved = false;
        self.cand.retain_mut(|(pos, id)| match grid.position(*id) {
            Some(p) => {
                if p != *pos {
                    cand_moved = true;
                    *pos = p;
                }
                true
            }
            None => {
                cand_moved = true;
                false
            }
        });
        self.q = q;
        if q_moved || cand_moved || self.stale {
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.cand.iter().map(|&(p, _)| p));
            recompute_alive_k_into(grid, q, sites, self.k, &mut self.alive, &mut scratch.prune);
            self.stale = false;
        }
        self.tighten(grid, feed, ops, false, scratch);
        let grown = self.cand.len();
        clean_dominated_k_with(&mut self.cand, q, self.k, &mut scratch.prune);
        if self.cand.len() < grown {
            self.stale = true;
        }
        self.verify(grid, feed, ops);
    }

    /// Phase-I loop at order `k`: pull the nearest object of the alive
    /// cells that has fewer than `k` candidate dominators, monitor it,
    /// and re-kill cells excluded by ≥ `k` bisectors.
    fn tighten(
        &mut self,
        grid: &Grid,
        feed: Option<&CellFeed>,
        ops: &mut OpCounters,
        initial: bool,
        scratch: &mut EvalScratch,
    ) {
        loop {
            if initial {
                ops.nn_c += 1;
            } else {
                ops.nn_b += 1;
            }
            let q_id = self.q_id;
            let q = self.q;
            let k = self.k;
            let cand = &self.cand;
            let next = if cand.is_empty() {
                nearest_feed(grid, feed, self.q, q_id, ops)
            } else {
                nearest_in_cells_with_feed(
                    grid,
                    feed,
                    self.q,
                    &self.alive,
                    |id, pos| {
                        if Some(id) == q_id || cand.iter().any(|&(_, c)| c == id) {
                            return false;
                        }
                        let d_q = pos.dist_sq(q);
                        let dominators = cand
                            .iter()
                            .filter(|&&(cp, _)| pos.dist_sq(cp) < d_q)
                            .count();
                        dominators < k
                    },
                    ops,
                    &mut scratch.cell_order,
                )
            };
            let Some(n) = next else { break };
            self.cand.push((n.pos, n.id));
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.cand.iter().map(|&(p, _)| p));
            recompute_alive_k_into(
                grid,
                self.q,
                sites,
                self.k,
                &mut self.alive,
                &mut scratch.prune,
            );
        }
    }

    /// Verification at order `k`: a candidate is an answer iff fewer than
    /// `k` other objects lie strictly closer to it than the query.
    /// Rebuilds `self.rnn` in place.
    fn verify(&mut self, grid: &Grid, feed: Option<&CellFeed>, ops: &mut OpCounters) {
        let mut rnn = std::mem::take(&mut self.rnn);
        rnn.clear();
        for &(pos, id) in &self.cand {
            ops.verifications += 1;
            let pair;
            let single;
            let exclude: &[ObjectId] = match self.q_id {
                Some(qid) => {
                    pair = [id, qid];
                    &pair
                }
                None => {
                    single = [id];
                    &single
                }
            };
            if count_closer_than_feed(grid, feed, pos, pos.dist_sq(self.q), self.k, exclude, ops)
                < self.k
            {
                rnn.push(id);
            }
        }
        rnn.sort_unstable();
        self.rnn = rnn;
    }

    /// The current verified answer, sorted by id.
    #[inline]
    pub fn rnn(&self) -> &[ObjectId] {
        &self.rnn
    }

    /// The query order `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The monitored candidate set.
    pub fn candidates(&self) -> Vec<ObjectId> {
        self.cand.iter().map(|&(_, id)| id).collect()
    }

    /// The monitored candidates with their last-seen positions, without
    /// allocating.
    #[inline]
    pub fn candidate_pairs(&self) -> &[(Point, ObjectId)] {
        &self.cand
    }

    /// Number of monitored objects (≤ 6k under exact greedy insertion).
    #[inline]
    pub fn num_monitored(&self) -> usize {
        self.cand.len()
    }

    /// The alive region.
    #[inline]
    pub fn alive_cells(&self) -> &CellSet {
        &self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn oracle(g: &Grid, q: Point, q_id: Option<ObjectId>, k: usize) -> Vec<ObjectId> {
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        naive::mono_rknn(&objs, q, q_id, k)
    }

    #[test]
    fn k1_matches_the_plain_monitor() {
        let mut state = 19u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for _ in 0..10 {
            let pts: Vec<(f64, f64)> = (0..50).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let mk = MonoIgernK::initial(&g, q, None, 1, &mut ops);
            let m1 = crate::MonoIgern::initial(&g, q, None, &mut ops);
            assert_eq!(mk.rnn(), m1.rnn());
        }
    }

    #[test]
    fn initial_matches_oracle_for_various_k() {
        let mut state = 29u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..12 {
            let pts: Vec<(f64, f64)> = (0..60).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            for k in [1usize, 2, 3, 5] {
                let m = MonoIgernK::initial(&g, q, None, k, &mut ops);
                assert_eq!(
                    m.rnn(),
                    oracle(&g, q, None, k).as_slice(),
                    "round {round} k {k}"
                );
                assert!(m.num_monitored() <= 6 * k, "6k candidate bound violated");
            }
        }
    }

    #[test]
    fn answers_are_monotone_in_k() {
        let g = grid_with(&[
            (4.0, 5.0),
            (4.5, 5.0),
            (6.0, 5.0),
            (5.0, 7.0),
            (9.0, 9.0),
            (1.0, 2.0),
        ]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut prev: Vec<ObjectId> = Vec::new();
        for k in 1..=4 {
            let m = MonoIgernK::initial(&g, q, None, k, &mut ops);
            for id in &prev {
                assert!(m.rnn().contains(id), "k={k} lost an answer from k-1");
            }
            prev = m.rnn().to_vec();
        }
    }

    #[test]
    fn incremental_matches_oracle_under_movement() {
        let mut state = 59u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..40).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        for k in [2usize, 3] {
            let mut g = grid_with(&pts);
            let mut q = Point::new(5.0, 5.0);
            let mut ops = OpCounters::new();
            let mut m = MonoIgernK::initial(&g, q, None, k, &mut ops);
            for tick in 0..25 {
                for i in 0..40u32 {
                    if rnd() < 0.3 {
                        let p = g.position(ObjectId(i)).unwrap();
                        g.update(
                            ObjectId(i),
                            Point::new(
                                (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                                (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            ),
                        );
                    }
                }
                q = Point::new(
                    (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                    (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
                );
                m.incremental(&g, q, &mut ops);
                assert_eq!(
                    m.rnn(),
                    oracle(&g, q, None, k).as_slice(),
                    "k {k} tick {tick}"
                );
            }
        }
    }

    #[test]
    fn empty_and_small_populations() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        let m = MonoIgernK::initial(&g, Point::new(5.0, 5.0), None, 3, &mut ops);
        assert!(m.rnn().is_empty());
        // With n ≤ k, every object is an answer.
        let g2 = grid_with(&[(1.0, 1.0), (9.0, 9.0)]);
        let m2 = MonoIgernK::initial(&g2, Point::new(5.0, 5.0), None, 5, &mut ops);
        assert_eq!(m2.rnn().len(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        MonoIgernK::initial(&g, Point::ORIGIN, None, 0, &mut ops);
    }
}
