//! Continuous monochromatic reverse-nearest-neighbor evaluation
//! (paper §3: Algorithms 1 and 2).

mod igern;
mod krnn;

pub use igern::MonoIgern;
pub use krnn::MonoIgernK;
