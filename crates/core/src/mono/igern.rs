//! The monochromatic IGERN monitor.
//!
//! One *initial step* (Algorithm 1) runs at query-issue time; an
//! *incremental step* (Algorithm 2) runs every tick after that. Between
//! ticks the monitor keeps only:
//!
//! * the **alive region** — a single bounded set of grid cells around the
//!   query (vs. six pie regions in CRNN), and
//! * **`RNNcand`** — the candidate objects whose bisectors bound that
//!   region (on average ≈3, vs. exactly 6 in CRNN).
//!
//! Everything outside the alive region is provably dominated by some
//! candidate (Theorem 2, Case 2), so only the region and the candidates
//! need watching.

use igern_geom::Point;
use igern_grid::{
    exists_closer_than_feed, nearest_feed, nearest_undominated_in_cells_feed, CellFeed, CellSet,
    Grid, ObjectId, OpCounters,
};

use crate::prune::{clean_dominated_with, recompute_alive_into, PruneGranularity};
use crate::scratch::EvalScratch;

/// Continuous monochromatic RNN query state.
#[derive(Debug, Clone)]
pub struct MonoIgern {
    /// The query object's id inside the grid, when the query is itself a
    /// moving object (excluded from all searches); `None` for a pure
    /// query point.
    q_id: Option<ObjectId>,
    /// Query position as of the last evaluation.
    q: Point,
    /// The alive cells (the single monitored bounded region).
    alive: CellSet,
    /// `RNNcand`: monitored candidates with the positions their bisectors
    /// were drawn at.
    cand: Vec<(Point, ObjectId)>,
    /// Current verified answer, sorted by id.
    rnn: Vec<ObjectId>,
    /// Set when the alive region may encode bisectors of objects that were
    /// cleaned out of `RNNcand`: such objects are no longer watched for
    /// movement, so the next tick must redraw unconditionally or a cell
    /// killed by a departed object's old bisector could hide a new RNN.
    /// (The paper's Algorithm 2 is silent on this corner; without the
    /// forced redraw the completeness proof of Theorem 2 does not go
    /// through after a cleaning step.)
    stale: bool,
    /// Object-level filtering mode (ablation A2).
    granularity: PruneGranularity,
}

impl MonoIgern {
    /// Algorithm 1 — the initial step: compute the first answer, the alive
    /// region, and `RNNcand`.
    pub fn initial(grid: &Grid, q: Point, q_id: Option<ObjectId>, ops: &mut OpCounters) -> Self {
        Self::initial_with(grid, q, q_id, PruneGranularity::default(), ops)
    }

    /// [`MonoIgern::initial`] with an explicit pruning granularity
    /// (ablation A2; see [`PruneGranularity`]).
    pub fn initial_with(
        grid: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
    ) -> Self {
        Self::initial_in(grid, q, q_id, granularity, ops, &mut EvalScratch::default())
    }

    /// [`MonoIgern::initial_with`] with caller-provided evaluation scratch
    /// — the allocation-free form the hot paths use.
    pub fn initial_in(
        grid: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        Self::initial_in_feed(grid, None, q, q_id, granularity, ops, scratch)
    }

    /// [`MonoIgern::initial_in`] reading primed cells from `feed` (the
    /// batch evaluator's shared-scan cache). `None`-feed calls and
    /// feed-backed calls produce bit-identical answers and counters.
    pub fn initial_in_feed(
        grid: &Grid,
        feed: Option<&CellFeed>,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        let mut state = MonoIgern {
            q_id,
            q,
            alive: CellSet::full(grid.num_cells()),
            // Cleaning bounds the candidate set at 6 (six-region lemma);
            // tighten can briefly overshoot, so reserve enough headroom
            // that steady-state ticks never regrow these.
            cand: Vec::with_capacity(16),
            rnn: Vec::with_capacity(16),
            stale: false,
            granularity,
        };
        // Phase I: bounded region.
        state.tighten(grid, feed, ops, SearchClass::Constrained, scratch);
        // Phase II: verification.
        state.verify(grid, feed, ops);
        state
    }

    /// Algorithm 2 — the incremental step, run every Δt with the query's
    /// current position.
    pub fn incremental(&mut self, grid: &Grid, q: Point, ops: &mut OpCounters) {
        self.incremental_in(grid, q, ops, &mut EvalScratch::default());
    }

    /// [`MonoIgern::incremental`] with caller-provided evaluation scratch;
    /// a warm scratch makes the steady-state tick allocation-free.
    pub fn incremental_in(
        &mut self,
        grid: &Grid,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_in_feed(grid, None, q, ops, scratch);
    }

    /// [`MonoIgern::incremental_in`] reading primed cells from `feed`;
    /// see [`MonoIgern::initial_in_feed`].
    pub fn incremental_in_feed(
        &mut self,
        grid: &Grid,
        feed: Option<&CellFeed>,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        // Scenario checks (lines 2–5): did the query or any candidate move?
        let q_moved = q != self.q;
        let mut cand_moved = false;
        self.cand.retain_mut(|(pos, id)| match grid.position(*id) {
            Some(p) => {
                if p != *pos {
                    cand_moved = true;
                    *pos = p;
                }
                true
            }
            None => {
                // Object disappeared from the index: its bisector is void.
                cand_moved = true;
                false
            }
        });
        self.q = q;
        if q_moved || cand_moved || self.stale {
            // Redraw all bisectors; only cells between q and the bisectors
            // stay alive.
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.cand.iter().map(|&(p, _)| p));
            recompute_alive_into(grid, q, sites, &mut self.alive, &mut scratch.prune);
            self.stale = false;
        }
        // Lines 6–9: if objects (re-)entered the alive region, tighten the
        // region and clean the candidate list. The tighten loop doubles as
        // the existence check — it is a single bounded search when the
        // region is quiet.
        self.tighten(grid, feed, ops, SearchClass::Bounded, scratch);
        // Cleaning runs unconditionally: movement alone can make one
        // candidate dominate another, and with exact-granularity greedy
        // insertion the cleaned set is guaranteed ≤ 6 (at most one
        // candidate per 60° pie survives, by the classic six-region
        // lemma the paper's related work builds on).
        let grown = self.cand.len();
        clean_dominated_with(&mut self.cand, q, &mut scratch.prune);
        if self.cand.len() < grown {
            self.stale = true;
        }
        // Lines 10: verification.
        self.verify(grid, feed, ops);
    }

    /// Phase-I loop (Algorithm 1 lines 3–6): repeatedly take the nearest
    /// non-candidate object inside the alive cells, add it to `RNNcand`,
    /// and kill the cells beyond its bisector, until the alive region
    /// holds no non-candidate object.
    fn tighten(
        &mut self,
        grid: &Grid,
        feed: Option<&CellFeed>,
        ops: &mut OpCounters,
        class: SearchClass,
        scratch: &mut EvalScratch,
    ) {
        loop {
            match class {
                SearchClass::Constrained => ops.nn_c += 1,
                SearchClass::Bounded => ops.nn_b += 1,
            }
            let q_id = self.q_id;
            let cand = &self.cand;
            let next = if cand.is_empty() {
                // No bisector drawn yet: every cell is alive, so the
                // constrained search degenerates to an unconstrained one —
                // run it as a ring search instead of sorting the whole
                // cell set.
                nearest_feed(grid, feed, self.q, q_id, ops)
            } else {
                // The probe excludes the query object and the candidates,
                // and under exact granularity also skips objects already
                // dominated by a candidate: they cannot be RNNs and need
                // no bisector. Cell granularity passes no sites, which
                // disables the domination test.
                let EvalScratch {
                    sites,
                    ids,
                    cell_order,
                    ..
                } = scratch;
                sites.clear();
                if let PruneGranularity::Exact = self.granularity {
                    sites.extend(cand.iter().map(|&(p, _)| p));
                }
                ids.clear();
                ids.extend(q_id);
                ids.extend(cand.iter().map(|&(_, id)| id));
                nearest_undominated_in_cells_feed(
                    grid,
                    feed,
                    self.q,
                    &self.alive,
                    sites,
                    ids,
                    ops,
                    cell_order,
                )
            };
            let Some(n) = next else { break };
            self.cand.push((n.pos, n.id));
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.cand.iter().map(|&(p, _)| p));
            recompute_alive_into(grid, self.q, sites, &mut self.alive, &mut scratch.prune);
        }
    }

    /// Phase-II verification (Algorithm 1 line 8 / Algorithm 2 line 10):
    /// keep a candidate iff the query is its nearest object — i.e. no
    /// other object lies strictly closer to it than the query does.
    /// Rebuilds `self.rnn` in place.
    fn verify(&mut self, grid: &Grid, feed: Option<&CellFeed>, ops: &mut OpCounters) {
        let mut rnn = std::mem::take(&mut self.rnn);
        rnn.clear();
        for &(pos, id) in &self.cand {
            ops.verifications += 1;
            let pair;
            let single;
            let exclude: &[ObjectId] = match self.q_id {
                Some(qid) => {
                    pair = [id, qid];
                    &pair
                }
                None => {
                    single = [id];
                    &single
                }
            };
            if !exists_closer_than_feed(grid, feed, pos, pos.dist_sq(self.q), exclude, ops) {
                rnn.push(id);
            }
        }
        rnn.sort_unstable();
        self.rnn = rnn;
    }

    /// The current verified answer, sorted by id.
    #[inline]
    pub fn rnn(&self) -> &[ObjectId] {
        &self.rnn
    }

    /// The monitored candidate set `RNNcand`.
    pub fn candidates(&self) -> Vec<ObjectId> {
        self.cand.iter().map(|&(_, id)| id).collect()
    }

    /// The monitored candidates with their last-seen positions, without
    /// allocating.
    #[inline]
    pub fn candidate_pairs(&self) -> &[(Point, ObjectId)] {
        &self.cand
    }

    /// Number of monitored objects (the Figure 7b metric; ≈3 on average
    /// vs. CRNN's constant 6).
    #[inline]
    pub fn num_monitored(&self) -> usize {
        self.cand.len()
    }

    /// The alive region.
    #[inline]
    pub fn alive_cells(&self) -> &CellSet {
        &self.alive
    }

    /// Area of the monitored (alive) region — the metric behind the
    /// paper's claim that IGERN watches "about one sixth of the area
    /// monitored by CRNN" (§3.3).
    pub fn monitored_area(&self, grid: &Grid) -> f64 {
        let cell_area = grid.space().area() / grid.num_cells() as f64;
        self.alive.count() as f64 * cell_area
    }

    /// Query position as of the last evaluation.
    #[inline]
    pub fn query_pos(&self) -> Point {
        self.q
    }
}

/// Which Section-6 cost class a tighten search is charged to.
#[derive(Clone, Copy)]
enum SearchClass {
    /// Initial step: constrained NN over the (initially unbounded) alive
    /// cells (`NN_c`).
    Constrained,
    /// Incremental step: bounded NN over the already-bounded region
    /// (`NN_b`).
    Bounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn oracle(g: &Grid, q: Point, q_id: Option<ObjectId>) -> Vec<ObjectId> {
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        naive::mono_rnn(&objs, q, q_id)
    }

    #[test]
    fn paper_figure_1_shape() {
        // Mirror of the Figure 1 walkthrough: the nearest object is always
        // a candidate; objects hidden behind bisectors are not.
        let g = grid_with(&[
            (5.0, 6.0), // o1: close, above q
            (6.5, 5.0), // o2: close, right of q
            (4.0, 4.0), // o3: close, lower-left
            (9.5, 9.5), // far corner
            (9.9, 0.1), // far corner
        ]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = MonoIgern::initial(&g, q, None, &mut ops);
        assert_eq!(m.rnn(), oracle(&g, q, None).as_slice());
        // The far corners must not be monitored (dominated by nearer
        // candidates' bisectors) — the whole point of the bounded region.
        assert!(m.num_monitored() < 5);
        // The query's cell is always alive.
        assert!(m.alive_cells().contains(g.cell_of_point(q)));
    }

    #[test]
    fn initial_matches_oracle_on_pseudorandom_data() {
        let mut state = 17u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..30 {
            let pts: Vec<(f64, f64)> = (0..80).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let m = MonoIgern::initial(&g, q, None, &mut ops);
            assert_eq!(m.rnn(), oracle(&g, q, None).as_slice(), "round {round}");
        }
    }

    #[test]
    fn empty_grid_has_no_answers() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        let m = MonoIgern::initial(&g, Point::new(5.0, 5.0), None, &mut ops);
        assert!(m.rnn().is_empty());
        assert_eq!(m.num_monitored(), 0);
    }

    #[test]
    fn single_object_is_always_rnn() {
        let g = grid_with(&[(2.0, 2.0)]);
        let mut ops = OpCounters::new();
        let m = MonoIgern::initial(&g, Point::new(8.0, 8.0), None, &mut ops);
        assert_eq!(m.rnn(), &[ObjectId(0)]);
    }

    #[test]
    fn query_object_in_grid_is_excluded() {
        let mut g = grid_with(&[(3.0, 3.0)]);
        g.insert(ObjectId(7), Point::new(5.0, 5.0)); // the query itself
        let mut ops = OpCounters::new();
        let m = MonoIgern::initial(&g, Point::new(5.0, 5.0), Some(ObjectId(7)), &mut ops);
        assert_eq!(
            m.rnn(),
            oracle(&g, Point::new(5.0, 5.0), Some(ObjectId(7))).as_slice()
        );
        assert!(!m.candidates().contains(&ObjectId(7)));
    }

    #[test]
    fn incremental_tracks_object_movement() {
        let mut g = grid_with(&[(4.0, 5.0), (8.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q, None, &mut ops);
        assert_eq!(m.rnn(), oracle(&g, q, None).as_slice());
        // Object 1 swings close to object 0: object 0 stops being an RNN.
        g.update(ObjectId(1), Point::new(3.5, 5.0));
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.rnn(), oracle(&g, q, None).as_slice());
        // And moves far away again.
        g.update(ObjectId(1), Point::new(9.5, 9.5));
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.rnn(), oracle(&g, q, None).as_slice());
    }

    #[test]
    fn incremental_tracks_query_movement() {
        let g = grid_with(&[(2.0, 2.0), (8.0, 8.0), (2.0, 8.0)]);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, Point::new(5.0, 5.0), None, &mut ops);
        for &(x, y) in &[(1.0, 1.0), (9.0, 9.0), (5.0, 9.0), (0.5, 9.5)] {
            let q = Point::new(x, y);
            m.incremental(&g, q, &mut ops);
            assert_eq!(m.rnn(), oracle(&g, q, None).as_slice(), "q = {q}");
        }
    }

    #[test]
    fn incremental_detects_new_object_in_alive_region() {
        let mut g = grid_with(&[(4.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q, None, &mut ops);
        assert_eq!(m.rnn(), &[ObjectId(0)]);
        // A new object appears right next to the query (Figure 2c's
        // scenario): the answer must absorb it.
        g.insert(ObjectId(1), Point::new(5.3, 5.0));
        m.incremental(&g, q, &mut ops);
        assert_eq!(m.rnn(), oracle(&g, q, None).as_slice());
        assert!(m.candidates().contains(&ObjectId(1)));
    }

    #[test]
    fn quiescent_ticks_keep_the_answer() {
        let g = grid_with(&[(4.0, 5.0), (8.0, 2.0), (1.0, 9.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q, None, &mut ops);
        let first = m.rnn().to_vec();
        for _ in 0..5 {
            m.incremental(&g, q, &mut ops);
            assert_eq!(m.rnn(), first.as_slice());
        }
    }

    #[test]
    fn long_random_run_matches_oracle_every_tick() {
        let mut state = 1234u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..60).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let mut g = grid_with(&pts);
        let mut q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q, None, &mut ops);
        for tick in 0..40 {
            // Jitter a random third of the objects and the query.
            for i in 0..60u32 {
                if rnd() < 0.33 {
                    let p = g.position(ObjectId(i)).unwrap();
                    let np = Point::new(
                        (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                    );
                    g.update(ObjectId(i), np);
                }
            }
            q = Point::new(
                (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
            );
            m.incremental(&g, q, &mut ops);
            assert_eq!(m.rnn(), oracle(&g, q, None).as_slice(), "tick {tick}");
            assert!(m.rnn().len() <= 6, "mono RNN bound violated");
        }
    }

    #[test]
    fn monitored_set_stays_small() {
        let mut state = 5150u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..200).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let g = grid_with(&pts);
        let mut ops = OpCounters::new();
        let mut total = 0usize;
        for i in 0..20 {
            let q = Point::new(rnd() * 10.0, rnd() * 10.0);
            let m = MonoIgern::initial(&g, q, None, &mut ops);
            total += m.num_monitored();
            let _ = i;
        }
        let avg = total as f64 / 20.0;
        // The paper reports ≈3.x monitored objects on average; allow a
        // loose band since this is a tiny data set.
        assert!(avg < 8.0, "average monitored = {avg}");
    }
}
