//! Network-distance continuous monitors.
//!
//! These run the mono/bi RkNN families and kNN under the road-network
//! metric (see [`crate::netspace`]). Each evaluation recomputes from the
//! current snapped view — like the snapshot baselines they publish no
//! watch set ([`ContinuousMonitor::monitored_cells`] returns `None`), so
//! skip routing only elides them on fully quiet ticks, which is sound
//! because identical input yields an identical recomputation. They stay
//! on the per-query path under batch evaluation (`batch_class` is
//! `None`); cross-query sharing happens through the lane's memoized
//! Dijkstra expansions instead, which cache per anchor *node* and so are
//! shared by every query and candidate touching that node.
//!
//! # Pruning
//!
//! Candidate generation pays one pair of memoized expansions for the
//! query's edge endpoints; every object's query distance is then O(1).
//! The per-candidate blocking test sweeps only the Euclidean disk
//! `disk(o, d_net(q, o))` of the *snapped* grid: any blocker `o'` has
//! `d_net(o, o') < d_net(q, o)`, and since network distance dominates
//! straight-line distance between snapped points, `o'` must lie inside
//! that disk. [`net_lb`] keeps the bound sound under floating-point
//! rounding. Distances are always computed with a fixed argument
//! orientation (query first for query distances, candidate first for
//! blocking distances) so monitors and the `naive` network oracles
//! compare bit-identical floats.

use igern_geom::Point;
use igern_grid::{CellSet, Grid, ObjectId, OpCounters};

use crate::monitor::ContinuousMonitor;
use crate::netspace::{net_lb, NetPos, NetView, NetworkSpace};
use crate::scratch::EvalScratch;
use crate::store::SpatialStore;
use crate::types::ObjectKind;

/// Fetch the store's network view or panic with an actionable message —
/// registration paths validate this, so hitting it means a driver wired
/// a network-mode query into a store without a network.
fn net_view(store: &SpatialStore) -> &NetView {
    store
        .net_view()
        .expect("network-mode query on a store without an attached road network")
}

/// Count the objects `o'` with `d_net(o, o') < bound`, stopping at `k`.
/// `blockers_a` restricts the sweep to kind-A objects (bichromatic
/// blocking); the candidate itself and the query object never count.
#[allow(clippy::too_many_arguments)]
fn blocked(
    store: &SpatialStore,
    nv: &NetView,
    ns: &NetworkSpace,
    o_id: ObjectId,
    o_pos: &NetPos,
    bound: f64,
    q_id: Option<ObjectId>,
    blockers_a: bool,
    k: usize,
    ops: &mut OpCounters,
    scratch: &mut EvalScratch,
) -> bool {
    ops.verifications += 1;
    let grid = nv.grid();
    let mut closer = 0usize;
    let mut check =
        |pid: ObjectId, ppos: Point, ops: &mut OpCounters, scratch: &mut EvalScratch| -> bool {
            if pid == o_id || Some(pid) == q_id {
                return false;
            }
            if blockers_a && store.kind(pid) != ObjectKind::A {
                return false;
            }
            if net_lb(o_pos.point.dist(ppos)) >= bound {
                return false;
            }
            let Some(pnp) = nv.net_pos(pid) else {
                ops.desyncs += 1;
                return false;
            };
            ops.objects_visited += 1;
            if ns.dist(&mut scratch.net, o_pos, &pnp) < bound {
                closer += 1;
                closer >= k
            } else {
                false
            }
        };
    if !bound.is_finite() {
        // Unreachable query: every reachable neighbor blocks; sweep all.
        for (pid, ppos) in grid.iter() {
            if check(pid, ppos, ops, scratch) {
                return true;
            }
        }
        return closer >= k;
    }
    let c0 = grid.cell_of_point(Point::new(o_pos.point.x - bound, o_pos.point.y - bound));
    let c1 = grid.cell_of_point(Point::new(o_pos.point.x + bound, o_pos.point.y + bound));
    let (x0, y0) = grid.cell_coords(c0);
    let (x1, y1) = grid.cell_coords(c1);
    for cy in y0..=y1 {
        for cx in x0..=x1 {
            let c = grid.cell_at(cx, cy);
            if net_lb(grid.cell_bounds(c).mindist(o_pos.point)) >= bound {
                continue;
            }
            ops.cells_visited += 1;
            for &pid in grid.objects_in(c) {
                let Some(ppos) = grid.position(pid) else {
                    ops.desyncs += 1;
                    continue;
                };
                if check(pid, ppos, ops, scratch) {
                    return true;
                }
            }
        }
    }
    closer >= k
}

/// Reverse-k-nearest-neighbors under network distance, monochromatic
/// (`bi = false`, candidates and blockers are all objects) or
/// bichromatic (`bi = true`, candidates are B objects, blockers are A
/// objects).
pub struct NetRknnMonitor {
    q_id: Option<ObjectId>,
    k: usize,
    bi: bool,
    answer: Vec<ObjectId>,
    candidates: usize,
}

impl NetRknnMonitor {
    /// Monochromatic network RkNN anchored at `q_id`.
    pub fn mono(q_id: Option<ObjectId>, k: usize) -> Self {
        NetRknnMonitor {
            q_id,
            k,
            bi: false,
            answer: Vec::new(),
            candidates: 0,
        }
    }

    /// Bichromatic network RkNN anchored at `q_id`.
    pub fn bi(q_id: Option<ObjectId>, k: usize) -> Self {
        NetRknnMonitor {
            q_id,
            k,
            bi: true,
            answer: Vec::new(),
            candidates: 0,
        }
    }

    fn evaluate(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let nv = net_view(store);
        let ns = nv.space().as_ref();
        let sq = ns.snap(q);
        ops.nn += 1;
        self.answer.clear();
        self.candidates = 0;
        for (oid, _) in nv.grid().iter() {
            if Some(oid) == self.q_id {
                continue;
            }
            if self.bi && store.kind(oid) != ObjectKind::B {
                continue;
            }
            let Some(so) = nv.net_pos(oid) else {
                ops.desyncs += 1;
                continue;
            };
            self.candidates += 1;
            ops.objects_visited += 1;
            let d_oq = ns.dist(&mut scratch.net, &sq, &so);
            if !blocked(
                store, nv, ns, oid, &so, d_oq, self.q_id, self.bi, self.k, ops, scratch,
            ) {
                self.answer.push(oid);
            }
        }
        self.answer.sort_unstable();
    }
}

impl ContinuousMonitor for NetRknnMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.evaluate(store, q, ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.evaluate(store, q, ops, scratch);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend_from_slice(&self.answer);
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        None
    }

    fn num_monitored(&self) -> usize {
        self.candidates
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}

/// k-nearest-neighbors under network distance: expanding Chebyshev-ring
/// scan of the snapped grid, pruned by the Euclidean lower bound against
/// the current k-th best network distance. Ties broken by object id,
/// matching `naive::knn_net`.
pub struct NetKnnMonitor {
    q_id: Option<ObjectId>,
    k: usize,
    answer: Vec<ObjectId>,
}

impl NetKnnMonitor {
    /// Network kNN anchored at `q_id`.
    pub fn new(q_id: Option<ObjectId>, k: usize) -> Self {
        NetKnnMonitor {
            q_id,
            k,
            answer: Vec::new(),
        }
    }

    fn evaluate(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let nv = net_view(store);
        let ns = nv.space().as_ref();
        let grid: &Grid = nv.grid();
        let sq = ns.snap(q);
        ops.nn += 1;
        // (distance, id)-ordered top-k staging, taken out of the scratch
        // so the network scratch can still feed `ns.dist` while we hold it.
        let mut top = std::mem::take(&mut scratch.net.knn);
        top.clear();
        let (bx, by) = grid.cell_coords(grid.cell_of_point(sq.point));
        let side = grid.cells_per_side() as isize;
        let min_ext = grid.min_cell_extent();
        let (bxi, byi) = (bx as isize, by as isize);
        let max_r = bxi.max(side - 1 - bxi).max(byi.max(side - 1 - byi)).max(0) as usize;
        for r in 0..=max_r {
            if top.len() == self.k {
                let bound = top[self.k - 1].0;
                if net_lb((r as f64 - 1.0).max(0.0) * min_ext) > bound {
                    break;
                }
            }
            let ri = r as isize;
            let mut visit = |cx: isize, cy: isize, ops: &mut OpCounters, sc: &mut EvalScratch| {
                if cx < 0 || cy < 0 || cx >= side || cy >= side {
                    return;
                }
                let c = grid.cell_at(cx as usize, cy as usize);
                if top.len() == self.k
                    && net_lb(grid.cell_bounds(c).mindist(sq.point)) > top[self.k - 1].0
                {
                    return;
                }
                ops.cells_visited += 1;
                for &oid in grid.objects_in(c) {
                    if Some(oid) == self.q_id {
                        continue;
                    }
                    let Some(p) = grid.position(oid) else {
                        ops.desyncs += 1;
                        continue;
                    };
                    if top.len() == self.k && net_lb(sq.point.dist(p)) > top[self.k - 1].0 {
                        continue;
                    }
                    let Some(so) = nv.net_pos(oid) else {
                        ops.desyncs += 1;
                        continue;
                    };
                    ops.objects_visited += 1;
                    let d = ns.dist(&mut sc.net, &sq, &so);
                    let entry = (d, oid);
                    let at = top
                        .partition_point(|&(bd, bid)| bd.total_cmp(&d).then(bid.cmp(&oid)).is_lt());
                    if at < self.k {
                        top.insert(at, entry);
                        top.truncate(self.k);
                    }
                }
            };
            if r == 0 {
                visit(bxi, byi, ops, scratch);
            } else {
                for cx in (bxi - ri)..=(bxi + ri) {
                    visit(cx, byi - ri, ops, scratch);
                    visit(cx, byi + ri, ops, scratch);
                }
                for cy in (byi - ri + 1)..=(byi + ri - 1) {
                    visit(bxi - ri, cy, ops, scratch);
                    visit(bxi + ri, cy, ops, scratch);
                }
            }
        }
        self.answer.clear();
        self.answer.extend(top.iter().map(|&(_, id)| id));
        self.answer.sort_unstable();
        scratch.net.knn = top;
    }
}

impl ContinuousMonitor for NetKnnMonitor {
    fn initial(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.evaluate(store, q, ops, scratch);
    }

    fn incremental(
        &mut self,
        store: &SpatialStore,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.evaluate(store, q, ops, scratch);
    }

    fn answer_into(&self, out: &mut Vec<ObjectId>) {
        out.clear();
        out.extend_from_slice(&self.answer);
    }

    fn monitored_cells(&self) -> Option<&CellSet> {
        None
    }

    fn num_monitored(&self) -> usize {
        self.k
    }

    fn region_area(&self, _store: &SpatialStore) -> f64 {
        0.0
    }
}
