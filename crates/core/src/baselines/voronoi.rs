//! The repetitive-Voronoi baseline for bichromatic RNN (paper §6,
//! "Voronoi cost": `Σ_t (a_t·NN_c + b_t·NN)`).
//!
//! At every timestamp the Voronoi cell of the query `q_A` with respect to
//! the A-objects is rebuilt from scratch: A-sites are consumed in
//! increasing distance (each costing a constrained NN) and their bisectors
//! clip the cell until the standard 2×-max-vertex-distance rule proves it
//! final. B-objects inside the cell have `q_A` as their nearest A-object
//! and are the answers; each is verified with an NN test (the `b_t·NN`
//! term), matching the paper's accounting.

use igern_geom::{Point, VoronoiCell};
use igern_grid::{
    k_nearest, nearest, range::objects_in_aabb, Grid, NearestIter, ObjectId, OpCounters,
};

/// How A-sites are pulled during cell construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SiteAcquisition {
    /// One shared incremental-NN iterator streams the sites (Hjaltason &
    /// Samet) — the strongest implementation of the baseline, and the
    /// default.
    #[default]
    Incremental,
    /// Each successive site is a fresh k-NN search with growing k —
    /// literally the `a_t · NN_c` accounting of the paper's §6 cost model
    /// (every site acquisition pays a full search). Used by the baseline
    /// ablation to show how much of the paper's reported gap is substrate
    /// strength vs algorithmic structure.
    RestartPerSite,
}

/// Result of one snapshot evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct VoronoiAnswer {
    /// The verified reverse nearest neighbors (B-object ids), sorted.
    pub rnn: Vec<ObjectId>,
    /// Number of A-sites whose bisectors were applied (the `a_t` of the
    /// cost model).
    pub sites_used: usize,
    /// Number of B-objects found inside the cell (the `b_t`).
    pub b_in_cell: usize,
}

/// One snapshot evaluation by Voronoi-cell construction (with the default
/// incremental site acquisition).
pub fn voronoi_snapshot(
    grid_a: &Grid,
    grid_b: &Grid,
    q: Point,
    q_id: Option<ObjectId>,
    ops: &mut OpCounters,
) -> VoronoiAnswer {
    voronoi_snapshot_with(grid_a, grid_b, q, q_id, SiteAcquisition::default(), ops)
}

/// One snapshot evaluation by Voronoi-cell construction, selecting the
/// site-acquisition strategy.
pub fn voronoi_snapshot_with(
    grid_a: &Grid,
    grid_b: &Grid,
    q: Point,
    q_id: Option<ObjectId>,
    acquisition: SiteAcquisition,
    ops: &mut OpCounters,
) -> VoronoiAnswer {
    // Build the cell, pulling A-sites in distance order.
    let mut cell = VoronoiCell::new(q, grid_a.space());
    match acquisition {
        SiteAcquisition::Incremental => {
            let mut iter = NearestIter::new(grid_a, q, q_id);
            loop {
                ops.nn_c += 1;
                let Some(site) = iter.next(ops) else { break };
                if cell.is_complete_up_to(site.dist()) {
                    break;
                }
                cell.add_site(site.pos);
            }
        }
        SiteAcquisition::RestartPerSite => {
            let mut k = 1usize;
            loop {
                ops.nn_c += 1;
                let batch = k_nearest(grid_a, q, k, q_id, ops);
                let Some(site) = batch.last().filter(|_| batch.len() == k) else {
                    break; // population exhausted
                };
                if cell.is_complete_up_to(site.dist()) {
                    break;
                }
                cell.add_site(site.pos);
                k += 1;
            }
        }
    }
    // Collect B-objects inside the cell.
    let bbox = match cell.polygon().bounding_box() {
        Some(b) => b,
        // Degenerate cell (q on the space boundary squeezed to nothing):
        // no B-object can be strictly closer to q than to every site.
        None => {
            return VoronoiAnswer {
                rnn: Vec::new(),
                sites_used: cell.sites_applied(),
                b_in_cell: 0,
            }
        }
    };
    let in_cell: Vec<(ObjectId, Point)> = objects_in_aabb(grid_b, &bbox, ops)
        .into_iter()
        .filter(|&(_, p)| cell.contains(p))
        .collect();
    // Verify each (the paper charges b_t unconstrained NN tests here; the
    // test also shields the answer from the cell's floating-point edges).
    let mut rnn: Vec<ObjectId> = in_cell
        .iter()
        .filter(|&&(_, pos)| {
            ops.verifications += 1;
            let d_q = pos.dist_sq(q);
            match nearest(grid_a, pos, q_id, ops) {
                None => true,
                Some(na) => d_q <= na.dist_sq,
            }
        })
        .map(|&(id, _)| id)
        .collect();
    rnn.sort_unstable();
    VoronoiAnswer {
        rnn,
        sites_used: cell.sites_applied(),
        b_in_cell: in_cell.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grids(a: &[(f64, f64)], b: &[(f64, f64)]) -> (Grid, Grid) {
        let space = Aabb::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut ga = Grid::new(space, 8);
        let mut gb = Grid::new(space, 8);
        for (i, &(x, y)) in a.iter().enumerate() {
            ga.insert(ObjectId(i as u32), Point::new(x, y));
        }
        for (i, &(x, y)) in b.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), Point::new(x, y));
        }
        (ga, gb)
    }

    #[test]
    fn snapshot_matches_oracle() {
        let mut state = 71u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..25 {
            let a: Vec<(f64, f64)> = (0..25).map(|_| (rnd(), rnd())).collect();
            let b: Vec<(f64, f64)> = (0..45).map(|_| (rnd(), rnd())).collect();
            let (ga, gb) = grids(&a, &b);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let got = voronoi_snapshot(&ga, &gb, q, None, &mut ops);
            let av: Vec<(ObjectId, Point)> = ga.iter().collect();
            let bv: Vec<(ObjectId, Point)> = gb.iter().collect();
            assert_eq!(got.rnn, naive::bi_rnn(&av, &bv, q, None), "round {round}");
        }
    }

    #[test]
    fn no_a_objects_keeps_whole_space() {
        let (ga, gb) = grids(&[], &[(1.0, 1.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let got = voronoi_snapshot(&ga, &gb, Point::new(5.0, 5.0), None, &mut ops);
        assert_eq!(got.rnn.len(), 2);
        assert_eq!(got.sites_used, 0);
    }

    #[test]
    fn stopping_rule_skips_far_sites() {
        // Four tight sites around q bound the cell; the far corner site
        // must not be consumed.
        let (ga, gb) = grids(
            &[(5.5, 5.0), (4.5, 5.0), (5.0, 5.5), (5.0, 4.5), (9.9, 9.9)],
            &[(5.1, 5.1)],
        );
        let mut ops = OpCounters::new();
        let got = voronoi_snapshot(&ga, &gb, Point::new(5.0, 5.0), None, &mut ops);
        assert!(got.sites_used <= 4, "used {} sites", got.sites_used);
    }

    #[test]
    fn restart_per_site_gives_identical_answers_at_higher_cost() {
        let mut state = 171u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let a: Vec<(f64, f64)> = (0..40).map(|_| (rnd(), rnd())).collect();
        let b: Vec<(f64, f64)> = (0..40).map(|_| (rnd(), rnd())).collect();
        let (ga, gb) = grids(&a, &b);
        let q = Point::new(5.0, 5.0);
        let mut ops_inc = OpCounters::new();
        let mut ops_restart = OpCounters::new();
        let fast = voronoi_snapshot_with(
            &ga,
            &gb,
            q,
            None,
            SiteAcquisition::Incremental,
            &mut ops_inc,
        );
        let slow = voronoi_snapshot_with(
            &ga,
            &gb,
            q,
            None,
            SiteAcquisition::RestartPerSite,
            &mut ops_restart,
        );
        assert_eq!(fast.rnn, slow.rnn);
        assert!(
            ops_restart.objects_visited > ops_inc.objects_visited,
            "restart-per-site must pay more ({} vs {})",
            ops_restart.objects_visited,
            ops_inc.objects_visited
        );
    }

    #[test]
    fn query_record_excluded() {
        let (mut ga, gb) = grids(&[(8.0, 5.0)], &[(5.5, 5.0)]);
        ga.insert(ObjectId(99), Point::new(5.0, 5.0));
        let mut ops = OpCounters::new();
        let got = voronoi_snapshot(&ga, &gb, Point::new(5.0, 5.0), Some(ObjectId(99)), &mut ops);
        assert_eq!(got.rnn, vec![ObjectId(1000)]);
    }

    #[test]
    fn b_in_cell_counts_candidates() {
        let (ga, gb) = grids(&[(9.0, 5.0)], &[(5.0, 5.0), (6.0, 5.0), (8.5, 5.0)]);
        let mut ops = OpCounters::new();
        let got = voronoi_snapshot(&ga, &gb, Point::new(4.0, 5.0), None, &mut ops);
        // Bisector at x = 6.5: two B-objects on q's side.
        assert_eq!(got.b_in_cell, 2);
        assert_eq!(got.rnn.len(), 2);
    }
}
