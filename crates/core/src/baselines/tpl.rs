//! The TPL baseline — Tao, Papadias, Lian, *Reverse kNN Search in
//! Arbitrary Dimensionality*, VLDB 2004 — as a snapshot algorithm
//! re-evaluated from scratch at every timestamp (the paper's §6 "TPL
//! cost": `Σ_t r_t (NN_c + NN)`).
//!
//! TPL's filter step "relies mainly on recursively filtering the data by
//! finding perpendicular bisectors between the query point and its
//! nearest object" (§2) — structurally the same pruning loop as IGERN's
//! initial step, which is exactly the point of the comparison: IGERN ≈
//! TPL's filter once, then incremental maintenance instead of repeated
//! reconstruction.

use igern_geom::Point;
use igern_grid::{exists_closer_than, nearest, nearest_in_set, Grid, ObjectId, OpCounters};

use crate::prune::kill_cells_beyond_bisector;
use crate::scratch::EvalScratch;

/// Result of one snapshot evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TplAnswer {
    /// The verified reverse nearest neighbors, sorted by id.
    pub rnn: Vec<ObjectId>,
    /// The filter-step candidates (the `r_t` of the cost model).
    pub candidates: Vec<ObjectId>,
}

/// One snapshot TPL evaluation.
pub fn tpl_snapshot(
    grid: &Grid,
    q: Point,
    q_id: Option<ObjectId>,
    ops: &mut OpCounters,
) -> TplAnswer {
    let mut out = TplAnswer::default();
    tpl_snapshot_with(grid, q, q_id, ops, &mut EvalScratch::default(), &mut out);
    out
}

/// [`tpl_snapshot`] writing into a caller-provided answer with reusable
/// evaluation scratch, so repeated snapshots allocate nothing once warm.
pub fn tpl_snapshot_with(
    grid: &Grid,
    q: Point,
    q_id: Option<ObjectId>,
    ops: &mut OpCounters,
    scratch: &mut EvalScratch,
    out: &mut TplAnswer,
) {
    // Filter step: iterative constrained NN + bisector pruning. The first
    // probe (all cells alive) runs as a plain ring search; after that each
    // new candidate's bisector kills the alive cells fully beyond it.
    // Per-bisector killing keeps a (slight) superset of the redrawn
    // intersection region, which is harmless here: the object predicate
    // below filters dominated objects *exactly*, and a point is outside
    // the exact kept region iff some candidate dominates it — so the
    // discovered candidates, and hence the answer, are identical to a
    // full redraw while each step costs one O(|alive|) sweep instead of a
    // polygon rasterization.
    let EvalScratch {
        pairs: cand, alive, ..
    } = scratch;
    alive.reset(grid.num_cells());
    alive.fill();
    cand.clear();
    loop {
        ops.nn_c += 1;
        let next = if cand.is_empty() {
            nearest(grid, q, q_id, ops)
        } else {
            // The alive region always surrounds q, so a ring expansion
            // over just the alive cells reaches the constrained NN after
            // a handful of rings and — crucially for the terminating
            // empty probe — never sweeps the dead remainder of the grid.
            nearest_in_set(
                grid,
                q,
                alive,
                // TPL prunes at object granularity: an object beyond the
                // bisector of any existing candidate (closer to it than to
                // q) is filtered, exactly as in the original algorithm.
                |id, pos| {
                    if Some(id) == q_id || cand.iter().any(|&(c, _)| c == id) {
                        return false;
                    }
                    let d_q = pos.dist_sq(q);
                    !cand.iter().any(|&(_, cp)| pos.dist_sq(cp) < d_q)
                },
                ops,
            )
        };
        let Some(n) = next else { break };
        cand.push((n.id, n.pos));
        kill_cells_beyond_bisector(grid, alive, q, n.pos);
    }
    // Refinement step: verify every candidate with an unconstrained test.
    out.rnn.clear();
    for &(id, pos) in cand.iter() {
        ops.verifications += 1;
        let pair;
        let single;
        let exclude: &[ObjectId] = match q_id {
            Some(qid) => {
                pair = [id, qid];
                &pair
            }
            None => {
                single = [id];
                &single
            }
        };
        if !exists_closer_than(grid, pos, pos.dist_sq(q), exclude, ops) {
            out.rnn.push(id);
        }
    }
    out.rnn.sort_unstable();
    out.candidates.clear();
    out.candidates.extend(cand.iter().map(|&(id, _)| id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    #[test]
    fn snapshot_matches_oracle() {
        let mut state = 61u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..30 {
            let pts: Vec<(f64, f64)> = (0..60).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let got = tpl_snapshot(&g, q, None, &mut ops);
            let objs: Vec<(ObjectId, Point)> = g.iter().collect();
            assert_eq!(got.rnn, naive::mono_rnn(&objs, q, None), "round {round}");
        }
    }

    #[test]
    fn warm_scratch_reproduces_the_cold_answer() {
        // One scratch reused across many snapshots must never leak state
        // between evaluations.
        let mut state = 62u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        let mut scratch = EvalScratch::default();
        let mut out = TplAnswer::default();
        for _ in 0..15 {
            let pts: Vec<(f64, f64)> = (0..40).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            tpl_snapshot_with(&g, q, None, &mut ops, &mut scratch, &mut out);
            let cold = tpl_snapshot(&g, q, None, &mut ops);
            assert_eq!(out, cold);
        }
    }

    #[test]
    fn candidates_contain_answers() {
        let g = grid_with(&[(4.0, 5.0), (6.0, 5.0), (5.0, 7.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let got = tpl_snapshot(&g, Point::new(5.0, 5.0), None, &mut ops);
        for r in &got.rnn {
            assert!(got.candidates.contains(r));
        }
    }

    #[test]
    fn empty_grid() {
        let g = grid_with(&[]);
        let mut ops = OpCounters::new();
        let got = tpl_snapshot(&g, Point::new(5.0, 5.0), None, &mut ops);
        assert!(got.rnn.is_empty());
        assert!(got.candidates.is_empty());
    }

    #[test]
    fn query_object_excluded() {
        let mut g = grid_with(&[(4.0, 5.0)]);
        g.insert(ObjectId(9), Point::new(5.0, 5.0));
        let mut ops = OpCounters::new();
        let got = tpl_snapshot(&g, Point::new(5.0, 5.0), Some(ObjectId(9)), &mut ops);
        assert_eq!(got.rnn, vec![ObjectId(0)]);
        assert!(!got.candidates.contains(&ObjectId(9)));
    }

    #[test]
    fn counts_constrained_searches_per_candidate() {
        let g = grid_with(&[(4.0, 5.0), (6.0, 5.0)]);
        let mut ops = OpCounters::new();
        let got = tpl_snapshot(&g, Point::new(5.0, 5.0), None, &mut ops);
        // r_t candidates require r_t + 1 constrained searches (the last
        // returns nothing) — the cost model's r_t·NN_c up to the +1.
        assert_eq!(ops.nn_c as usize, got.candidates.len() + 1);
        assert_eq!(ops.verifications as usize, got.candidates.len());
    }
}
