//! Baseline algorithms reconstructed from their published descriptions:
//! CRNN (continuous, monochromatic), TPL (snapshot, monochromatic), and
//! repetitive Voronoi-cell construction (snapshot, bichromatic).

mod crnn;
mod tpl;
mod voronoi;

pub use crnn::Crnn;
pub use tpl::{tpl_snapshot, tpl_snapshot_with, TplAnswer};
pub use voronoi::{voronoi_snapshot, voronoi_snapshot_with, SiteAcquisition, VoronoiAnswer};
