//! The CRNN baseline — Xia & Zhang, *Continuous Reverse Nearest Neighbor
//! Monitoring*, ICDE 2006 — reconstructed from its published description
//! and this paper's characterization (§2, §6).
//!
//! CRNN divides the space around the query into **six 60° pie regions**.
//! By the classic six-region theorem, the nearest neighbor of `q` inside
//! each pie is the only object of that pie that can be an RNN, so CRNN
//! continuously maintains six candidates (one per pie) and six monitored
//! regions. Per tick it performs six bounded NN searches (one per pie,
//! bounded by the pie candidate's distance — open-ended when the pie is
//! empty) followed by six verification NN tests — exactly the
//! `6·NN_b + 6·NN` of the paper's cost model, and the source of its two
//! drawbacks: it always assumes the six-answer worst case, and pie
//! regions can be open-ended where IGERN's single region is always
//! bounded.

use igern_geom::{sector_of, Point, Sector, SECTOR_COUNT};
use igern_grid::{exists_closer_than, nearest_where, Grid, ObjectId, OpCounters};

/// Continuous monochromatic RNN state for the six-pie method.
#[derive(Debug, Clone)]
pub struct Crnn {
    q_id: Option<ObjectId>,
    q: Point,
    /// Per-pie candidate: the pie's current NN with the position it was
    /// last seen at.
    cands: [Option<(ObjectId, Point)>; SECTOR_COUNT],
    /// Current verified answer, sorted by id.
    rnn: Vec<ObjectId>,
}

impl Crnn {
    /// Initial evaluation: an unbounded constrained NN search per pie,
    /// then verification (the `6·(NN_c + NN)` term of §6).
    pub fn initial(grid: &Grid, q: Point, q_id: Option<ObjectId>, ops: &mut OpCounters) -> Self {
        let mut state = Crnn {
            q_id,
            q,
            cands: [None; SECTOR_COUNT],
            rnn: Vec::new(),
        };
        for (i, slot) in state.cands.iter_mut().enumerate() {
            ops.nn_c += 1;
            *slot = pie_nn(grid, q, q_id, i, f64::INFINITY, ops);
        }
        state.verify(grid, ops);
        state
    }

    /// Per-tick maintenance: re-establish each pie's NN with a search
    /// bounded by the (possibly moved) candidate's current distance, then
    /// verify all six candidates (the `6·(NN_b + NN)` term of §6).
    pub fn incremental(&mut self, grid: &Grid, q: Point, ops: &mut OpCounters) {
        self.q = q;
        for i in 0..SECTOR_COUNT {
            // If the pie still has its candidate inside it, nothing beyond
            // the candidate's current distance can be the pie NN — bound
            // the search there. Otherwise the region is open-ended and the
            // whole pie must be searched.
            let bound = match self.cands[i] {
                Some((id, _)) => match grid.position(id) {
                    Some(p) if sector_of(q, p) == i && Some(id) != self.q_id => q.dist(p),
                    _ => f64::INFINITY,
                },
                None => f64::INFINITY,
            };
            ops.nn_b += 1;
            let found = pie_nn(grid, q, self.q_id, i, bound, ops);
            self.cands[i] = match (found, self.cands[i]) {
                (Some(n), _) => Some(n),
                // Bounded search found nothing but the old candidate is
                // still valid in the pie: it remains the pie NN.
                (None, Some((id, _))) => grid
                    .position(id)
                    .filter(|&p| sector_of(q, p) == i && Some(id) != self.q_id)
                    .map(|p| (id, p)),
                (None, None) => None,
            };
        }
        self.verify(grid, ops);
    }

    /// Verification: each pie candidate is an RNN iff no other object lies
    /// strictly closer to it than the query does.
    fn verify(&mut self, grid: &Grid, ops: &mut OpCounters) {
        let mut rnn = std::mem::take(&mut self.rnn);
        rnn.clear();
        for &(id, pos) in self.cands.iter().flatten() {
            ops.verifications += 1;
            let pair;
            let single;
            let exclude: &[ObjectId] = match self.q_id {
                Some(qid) => {
                    pair = [id, qid];
                    &pair
                }
                None => {
                    single = [id];
                    &single
                }
            };
            if !exists_closer_than(grid, pos, pos.dist_sq(self.q), exclude, ops) {
                rnn.push(id);
            }
        }
        rnn.sort_unstable();
        rnn.dedup();
        self.rnn = rnn;
    }

    /// The current verified answer, sorted by id.
    #[inline]
    pub fn rnn(&self) -> &[ObjectId] {
        &self.rnn
    }

    /// Total area of the six monitored pie regions: each pie is watched
    /// out to its candidate's distance (a 60° disk sector, `π·d²/6`);
    /// a pie without a candidate is open-ended and counts as one sixth
    /// of the data space. Areas are capped at one sixth of the space so
    /// boundary effects cannot exceed it.
    pub fn monitored_area(&self, grid: &Grid) -> f64 {
        let sixth = grid.space().area() / 6.0;
        self.cands
            .iter()
            .map(|c| match c {
                Some((_, pos)) => {
                    let d = self.q.dist(*pos);
                    (std::f64::consts::PI * d * d / 6.0).min(sixth)
                }
                None => sixth,
            })
            .sum()
    }

    /// Number of monitored objects — always the number of non-empty pies;
    /// on the dense workloads of the paper this is the constant 6 that
    /// Figure 7b contrasts with IGERN's ≈3.
    pub fn num_monitored(&self) -> usize {
        self.cands.iter().flatten().count()
    }

    /// Ids of the current pie candidates.
    pub fn candidates(&self) -> Vec<ObjectId> {
        self.cands.iter().flatten().map(|&(id, _)| id).collect()
    }

    /// The current pie candidates with their last-seen positions.
    pub fn candidate_pairs(&self) -> impl Iterator<Item = (Point, ObjectId)> + '_ {
        self.cands.iter().flatten().map(|&(id, p)| (p, id))
    }
}

/// Nearest object to `q` within pie `i`, up to `max_dist`.
fn pie_nn(
    grid: &Grid,
    q: Point,
    q_id: Option<ObjectId>,
    i: usize,
    max_dist: f64,
    ops: &mut OpCounters,
) -> Option<(ObjectId, Point)> {
    let sector = Sector::new(q, i);
    nearest_where(
        grid,
        q,
        |_, bounds| sector.intersects_aabb(bounds),
        |id, pos| Some(id) != q_id && sector.contains(pos),
        max_dist,
        ops,
    )
    .map(|n| (n.id, n.pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 10.0, 10.0), 8);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    fn oracle(g: &Grid, q: Point, q_id: Option<ObjectId>) -> Vec<ObjectId> {
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        naive::mono_rnn(&objs, q, q_id)
    }

    #[test]
    fn initial_matches_oracle() {
        let mut state = 41u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..30 {
            let pts: Vec<(f64, f64)> = (0..70).map(|_| (rnd(), rnd())).collect();
            let g = grid_with(&pts);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let c = Crnn::initial(&g, q, None, &mut ops);
            assert_eq!(c.rnn(), oracle(&g, q, None).as_slice(), "round {round}");
        }
    }

    #[test]
    fn monitors_up_to_six_objects() {
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let a = i as f64 * 0.37;
                (5.0 + 3.0 * a.cos(), 5.0 + 3.0 * a.sin())
            })
            .collect();
        let g = grid_with(&pts);
        let mut ops = OpCounters::new();
        let c = Crnn::initial(&g, Point::new(5.0, 5.0), None, &mut ops);
        assert_eq!(c.num_monitored(), 6, "dense ring fills every pie");
    }

    #[test]
    fn empty_pies_monitor_nothing() {
        let g = grid_with(&[(6.0, 5.0)]); // one object, one pie occupied
        let mut ops = OpCounters::new();
        let c = Crnn::initial(&g, Point::new(5.0, 5.0), None, &mut ops);
        assert_eq!(c.num_monitored(), 1);
        assert_eq!(c.rnn(), &[ObjectId(0)]);
    }

    #[test]
    fn incremental_tracks_movement() {
        let mut g = grid_with(&[(6.0, 5.0), (3.0, 5.0), (5.0, 8.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut c = Crnn::initial(&g, q, None, &mut ops);
        assert_eq!(c.rnn(), oracle(&g, q, None).as_slice());
        // Object 0 cuts between q and object 1's pie? Move things around
        // and re-check every tick.
        for &(id, x, y) in &[
            (0u32, 3.4, 5.0), // object 0 jumps next to object 1
            (1u32, 9.0, 9.0),
            (2u32, 5.0, 4.0), // crosses into a different pie
        ] {
            g.update(ObjectId(id), Point::new(x, y));
            c.incremental(&g, q, &mut ops);
            assert_eq!(c.rnn(), oracle(&g, q, None).as_slice());
        }
    }

    #[test]
    fn incremental_tracks_query_movement() {
        let g = grid_with(&[(2.0, 2.0), (8.0, 8.0), (2.0, 8.0), (8.0, 2.0)]);
        let mut ops = OpCounters::new();
        let mut c = Crnn::initial(&g, Point::new(5.0, 5.0), None, &mut ops);
        for &(x, y) in &[(1.0, 1.0), (9.0, 1.0), (5.0, 9.5), (0.1, 9.9)] {
            let q = Point::new(x, y);
            c.incremental(&g, q, &mut ops);
            assert_eq!(c.rnn(), oracle(&g, q, None).as_slice(), "q = {q}");
        }
    }

    #[test]
    fn long_random_run_matches_oracle() {
        let mut state = 4242u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let pts: Vec<(f64, f64)> = (0..50).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let mut g = grid_with(&pts);
        let mut q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut c = Crnn::initial(&g, q, None, &mut ops);
        for tick in 0..40 {
            for i in 0..50u32 {
                if rnd() < 0.3 {
                    let p = g.position(ObjectId(i)).unwrap();
                    g.update(
                        ObjectId(i),
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            q = Point::new(
                (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
            );
            c.incremental(&g, q, &mut ops);
            assert_eq!(c.rnn(), oracle(&g, q, None).as_slice(), "tick {tick}");
        }
    }

    #[test]
    fn monitored_area_shrinks_with_density() {
        // Dense ring close to q → small pies; sparse data → large/open pies.
        let dense: Vec<(f64, f64)> = (0..60)
            .map(|i| {
                let a = i as f64 * 0.4;
                (5.0 + 0.8 * a.cos(), 5.0 + 0.8 * a.sin())
            })
            .collect();
        let gd = grid_with(&dense);
        let gs = grid_with(&[(9.5, 9.5)]);
        let mut ops = OpCounters::new();
        let cd = Crnn::initial(&gd, Point::new(5.0, 5.0), None, &mut ops);
        let cs = Crnn::initial(&gs, Point::new(5.0, 5.0), None, &mut ops);
        assert!(cd.monitored_area(&gd) < cs.monitored_area(&gs));
        // Five empty pies in the sparse case ⇒ at least 5/6 of the space.
        assert!(cs.monitored_area(&gs) >= gs.space().area() * 5.0 / 6.0 - 1e-6);
    }

    #[test]
    fn query_object_excluded() {
        let mut g = grid_with(&[(6.0, 5.0)]);
        g.insert(ObjectId(9), Point::new(5.0, 5.0));
        let mut ops = OpCounters::new();
        let c = Crnn::initial(&g, Point::new(5.0, 5.0), Some(ObjectId(9)), &mut ops);
        assert_eq!(c.rnn(), &[ObjectId(0)]);
        assert_eq!(c.num_monitored(), 1);
    }
}
