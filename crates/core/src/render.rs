//! ASCII rendering of monitor state — a debugging aid that draws the
//! grid, the alive region, the query, and the monitored candidates the
//! way the paper's Figures 1–3 do.
//!
//! ```text
//! · · ▒ ▒ ▒ · · ·
//! · ▒ ▒ c ▒ ▒ · ·
//! ▒ ▒ ▒ Q ▒ c · ·
//! · ▒ c ▒ ▒ · · ·
//! ```
//!
//! `Q` query cell, `c` candidate cell, `▒` alive cell, `·` dead cell,
//! rows printed top (max y) to bottom.

use igern_geom::Point;
use igern_grid::{CellSet, Grid, ObjectId};

/// Render the alive region of a monitor over its grid.
///
/// `candidates` are marked with `c` (their current grid positions), the
/// query cell with `Q`. A cell that is both the query's and a
/// candidate's shows `Q`.
pub fn render_region(grid: &Grid, alive: &CellSet, q: Point, candidates: &[ObjectId]) -> String {
    let n = grid.cells_per_side();
    let q_cell = grid.cell_of_point(q);
    let cand_cells: Vec<usize> = candidates
        .iter()
        .filter_map(|&id| grid.position(id).map(|p| grid.cell_of_point(p)))
        .collect();
    let mut out = String::with_capacity(n * (2 * n + 1));
    for iy in (0..n).rev() {
        for ix in 0..n {
            let c = grid.cell_at(ix, iy);
            let ch = if c == q_cell {
                'Q'
            } else if cand_cells.contains(&c) {
                'c'
            } else if alive.contains(c) {
                '▒'
            } else {
                '·'
            };
            out.push(ch);
            if ix + 1 < n {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

/// Render grid occupancy as a digit heat map (`·` empty, `1`–`9`
/// counts, `+` for ten or more).
pub fn render_occupancy(grid: &Grid) -> String {
    let n = grid.cells_per_side();
    let mut out = String::with_capacity(n * (2 * n + 1));
    for iy in (0..n).rev() {
        for ix in 0..n {
            let count = grid.objects_in(grid.cell_at(ix, iy)).len();
            let ch = match count {
                0 => '·',
                1..=9 => char::from_digit(count as u32, 10).unwrap(),
                _ => '+',
            };
            out.push(ch);
            if ix + 1 < n {
                out.push(' ');
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MonoIgern;
    use igern_geom::Aabb;
    use igern_grid::OpCounters;

    fn grid_with(points: &[(f64, f64)]) -> Grid {
        let mut g = Grid::new(Aabb::from_coords(0.0, 0.0, 8.0, 8.0), 4);
        for (i, &(x, y)) in points.iter().enumerate() {
            g.insert(ObjectId(i as u32), Point::new(x, y));
        }
        g
    }

    #[test]
    fn region_render_shape_and_markers() {
        let g = grid_with(&[(1.0, 1.0), (7.0, 7.0)]);
        let mut ops = OpCounters::new();
        let q = Point::new(3.0, 3.0);
        let m = MonoIgern::initial(&g, q, None, &mut ops);
        let art = render_region(&g, m.alive_cells(), q, &m.candidates());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 4, "one line per row");
        assert!(lines
            .iter()
            .all(|l| l.chars().filter(|c| *c != ' ').count() == 4));
        assert_eq!(art.matches('Q').count(), 1, "exactly one query marker");
        assert!(art.contains('c'), "candidates must be drawn");
        // The query sits in cell (1,1), i.e. third line from the top.
        let q_line = lines[2];
        assert_eq!(q_line.chars().filter(|c| *c == 'Q').count(), 1);
    }

    #[test]
    fn occupancy_render_counts() {
        let g = grid_with(&[(1.0, 1.0), (1.2, 1.3), (7.0, 7.0)]);
        let art = render_occupancy(&g);
        // Cell (0,0) holds two objects → digit 2 on the bottom row.
        let lines: Vec<&str> = art.lines().collect();
        assert!(lines[3].starts_with('2'));
        // Cell (3,3) holds one object → digit 1 on the top row.
        assert!(lines[0].ends_with('1'));
        assert_eq!(art.matches('·').count(), 14, "14 empty cells");
    }

    #[test]
    fn dense_cells_cap_at_plus() {
        let pts: Vec<(f64, f64)> = (0..12).map(|i| (0.5 + 0.05 * i as f64, 0.5)).collect();
        let g = grid_with(&pts);
        let art = render_occupancy(&g);
        assert!(art.contains('+'));
    }
}
