//! The bichromatic IGERN monitor.
//!
//! For a query `q_A` of type A, the answer is the set of B-objects whose
//! nearest A-object is `q_A`. Unlike the monochromatic case the answer
//! size is unbounded, so no pie-based method applies; IGERN instead
//! monitors:
//!
//! * the **alive region** — cells not yet dominated by the bisector of
//!   some monitored A-object (this region contains the query's Voronoi
//!   cell w.r.t. the A-objects, at cell granularity), and
//! * **`NN_A`** — the A-objects whose bisectors bound that region.
//!
//! A B-object can only be (or become) an answer inside the alive region;
//! the region can only change shape when `q_A` or a monitored A-object
//! moves, or when a new A-object enters it.

use igern_geom::Point;
use igern_grid::{
    nearest_feed, nearest_in_cells_with_feed, CellFeed, CellSet, Grid, ObjectId, OpCounters,
};

use crate::prune::{
    clean_dominated_with, kill_cells_beyond_bisector, recompute_alive_into, PruneGranularity,
};
use crate::scratch::EvalScratch;

/// Continuous bichromatic RNN query state.
#[derive(Debug, Clone)]
pub struct BiIgern {
    /// The query's own record id inside the A-grid (excluded from
    /// blocking tests); `None` for a pure query point.
    q_id: Option<ObjectId>,
    /// Query position as of the last evaluation.
    q: Point,
    /// The alive cells (shared cell geometry of the A- and B-grids).
    alive: CellSet,
    /// `NN_A`: monitored A-objects with the positions their bisectors were
    /// drawn at.
    nn_a: Vec<(Point, ObjectId)>,
    /// Current verified answer (B-object ids), sorted.
    rnn_b: Vec<ObjectId>,
    /// Set when the alive region may encode bisectors of A-objects that
    /// were cleaned out of `NN_A`; forces a redraw next tick (see the
    /// matching note on the monochromatic monitor).
    stale: bool,
    /// Object-level filtering mode (ablation A2).
    granularity: PruneGranularity,
}

impl BiIgern {
    /// Algorithm 3 — the initial step.
    ///
    /// # Panics
    /// Panics when the two grids do not share cell geometry.
    pub fn initial(
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        ops: &mut OpCounters,
    ) -> Self {
        Self::initial_with(grid_a, grid_b, q, q_id, PruneGranularity::default(), ops)
    }

    /// [`BiIgern::initial`] with an explicit pruning granularity
    /// (ablation A2; see [`PruneGranularity`]).
    pub fn initial_with(
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
    ) -> Self {
        Self::initial_in(
            grid_a,
            grid_b,
            q,
            q_id,
            granularity,
            ops,
            &mut EvalScratch::default(),
        )
    }

    /// [`BiIgern::initial_with`] with caller-provided evaluation scratch
    /// — the allocation-free form the hot paths use.
    ///
    /// # Panics
    /// Panics when the two grids do not share cell geometry.
    pub fn initial_in(
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        Self::initial_in_feed(
            grid_a,
            grid_b,
            None,
            None,
            q,
            q_id,
            granularity,
            ops,
            scratch,
        )
    }

    /// [`BiIgern::initial_in`] reading primed A-/B-grid cells from
    /// `feed_a`/`feed_b` (the batch evaluator's shared-scan caches);
    /// bit-identical to the `None`-feed form.
    ///
    /// # Panics
    /// Panics when the two grids do not share cell geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn initial_in_feed(
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        q: Point,
        q_id: Option<ObjectId>,
        granularity: PruneGranularity,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        assert_eq!(
            grid_a.num_cells(),
            grid_b.num_cells(),
            "A- and B-grids must share cell geometry"
        );
        let mut state = BiIgern {
            q_id,
            q,
            alive: CellSet::full(grid_b.num_cells()),
            nn_a: Vec::new(),
            rnn_b: Vec::new(),
            stale: false,
            granularity,
        };
        // Phase I: bounded region from A-object bisectors.
        state.tighten(
            grid_a,
            grid_b,
            feed_a,
            ops,
            SearchClass::Constrained,
            scratch,
        );
        // Phase II: verification (also refines the region and NN_A).
        state.verify(grid_a, grid_b, feed_a, feed_b, ops, scratch);
        state
    }

    /// Algorithm 4 — the incremental step, run every Δt with the query's
    /// current position.
    pub fn incremental(&mut self, grid_a: &Grid, grid_b: &Grid, q: Point, ops: &mut OpCounters) {
        self.incremental_in(grid_a, grid_b, q, ops, &mut EvalScratch::default());
    }

    /// [`BiIgern::incremental`] with caller-provided evaluation scratch;
    /// a warm scratch makes the steady-state tick allocation-free.
    pub fn incremental_in(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_in_feed(grid_a, grid_b, None, None, q, ops, scratch);
    }

    /// [`BiIgern::incremental_in`] reading primed cells from
    /// `feed_a`/`feed_b`; see [`BiIgern::initial_in_feed`].
    #[allow(clippy::too_many_arguments)]
    pub fn incremental_in_feed(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        // Lines 2–5: redraw when the query or a monitored A-object moved.
        let q_moved = q != self.q;
        let mut a_moved = false;
        self.nn_a
            .retain_mut(|(pos, id)| match grid_a.position(*id) {
                Some(p) => {
                    if p != *pos {
                        a_moved = true;
                        *pos = p;
                    }
                    true
                }
                None => {
                    a_moved = true;
                    false
                }
            });
        self.q = q;
        if q_moved || a_moved || self.stale {
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.nn_a.iter().map(|&(p, _)| p));
            recompute_alive_into(grid_b, q, sites, &mut self.alive, &mut scratch.prune);
            self.stale = false;
        }
        // Lines 6–9: tighten on new A-objects in the alive cells, then
        // clean the monitored set.
        self.tighten(grid_a, grid_b, feed_a, ops, SearchClass::Bounded, scratch);
        // Cleaning runs unconditionally: movement alone can make one
        // monitored A-object dominate another (see the monochromatic
        // monitor for the pie-lemma bound this restores).
        let grown = self.nn_a.len();
        clean_dominated_with(&mut self.nn_a, q, &mut scratch.prune);
        if self.nn_a.len() < grown {
            self.stale = true;
        }
        // Line 10: verify as in Phase II of Algorithm 3.
        self.verify(grid_a, grid_b, feed_a, feed_b, ops, scratch);
    }

    /// Phase-I loop (Algorithm 3 lines 3–6): pull A-objects out of the
    /// alive cells in distance order, monitoring each and killing the
    /// cells its bisector dominates, until no unmonitored A-object remains
    /// alive.
    fn tighten(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        ops: &mut OpCounters,
        class: SearchClass,
        scratch: &mut EvalScratch,
    ) {
        loop {
            match class {
                SearchClass::Constrained => ops.nn_c += 1,
                SearchClass::Bounded => ops.nn_b += 1,
            }
            let q_id = self.q_id;
            let q = self.q;
            let nn_a = &self.nn_a;
            let granularity = self.granularity;
            let next = if nn_a.is_empty() {
                // All cells alive: run the degenerate constrained search
                // as a plain ring search over the A-grid.
                nearest_feed(grid_a, feed_a, self.q, q_id, ops)
            } else {
                nearest_in_cells_with_feed(
                    grid_a,
                    feed_a,
                    self.q,
                    &self.alive,
                    |id, pos| {
                        if Some(id) == q_id || nn_a.iter().any(|&(_, c)| c == id) {
                            return false;
                        }
                        match granularity {
                            PruneGranularity::Cell => true,
                            // A-objects dominated by a monitored A-object
                            // cannot block any point of the exact region; a
                            // B-object they do block is caught (and the
                            // blocker monitored) during Phase-II verification.
                            PruneGranularity::Exact => {
                                let d_q = pos.dist_sq(q);
                                !nn_a.iter().any(|&(cp, _)| pos.dist_sq(cp) < d_q)
                            }
                        }
                    },
                    ops,
                    &mut scratch.cell_order,
                )
            };
            let Some(n) = next else { break };
            self.nn_a.push((n.pos, n.id));
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.nn_a.iter().map(|&(p, _)| p));
            recompute_alive_into(grid_b, self.q, sites, &mut self.alive, &mut scratch.prune);
        }
    }

    /// Phase-II verification (Algorithm 3 lines 7–17): for every B-object
    /// in the alive cells, test whether `q_A` is its nearest A-object. A
    /// failing B-object's blocker joins `NN_A` and its bisector further
    /// shrinks the region.
    fn verify(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        // Materialize the B-objects currently alive; membership is
        // re-checked per object because the region shrinks as blockers are
        // discovered.
        let bs = &mut scratch.pairs;
        bs.clear();
        for c in self.alive.iter() {
            if let Some(entries) = feed_b.and_then(|f| f.get(c)) {
                // Feed-primed cell: replay the cached bucket — same order,
                // same desync counting as the direct scan below.
                for e in entries {
                    if e.live {
                        bs.push((e.id, e.pos));
                    } else {
                        ops.desyncs += 1;
                    }
                }
                continue;
            }
            for &id in grid_b.objects_in(c) {
                match grid_b.position(id) {
                    Some(pos) => bs.push((id, pos)),
                    None => {
                        // Bucket/position desync: treat the B-object as
                        // removed and keep verifying instead of panicking.
                        ops.desyncs += 1;
                    }
                }
            }
        }
        let mut rnn_b = std::mem::take(&mut self.rnn_b);
        rnn_b.clear();
        for &(ob, pos) in bs.iter() {
            if !self.alive.contains(grid_b.cell_of_point(pos)) {
                // Killed by a blocker found earlier in this pass: some
                // monitored A-object is provably closer to it than q.
                continue;
            }
            if self.granularity == PruneGranularity::Exact {
                // Object-level prefilter: a B-object strictly closer to a
                // monitored A-object than to q is provably blocked, and
                // its blocker is already monitored — no NN search needed.
                // (Cell-granular alive regions keep whole straddling
                // cells; without this, every B-object in them pays a full
                // NN search per tick.)
                let d_q = pos.dist_sq(self.q);
                if self.nn_a.iter().any(|&(ap, _)| pos.dist_sq(ap) < d_q) {
                    continue;
                }
            }
            ops.verifications += 1;
            let nearest_a = nearest_feed(grid_a, feed_a, pos, self.q_id, ops);
            let d_q = pos.dist_sq(self.q);
            match nearest_a {
                // No other A-object at all: q is trivially nearest.
                None => rnn_b.push(ob),
                // Ties favor the query (the blocking condition is strict).
                Some(na) if d_q <= na.dist_sq => rnn_b.push(ob),
                Some(na) => {
                    // Blocked: monitor the blocker and shrink the region
                    // (Algorithm 3 lines 13–15).
                    if !self.nn_a.iter().any(|&(_, c)| c == na.id) {
                        self.nn_a.push((na.pos, na.id));
                        kill_cells_beyond_bisector(grid_b, &mut self.alive, self.q, na.pos);
                        let grown = self.nn_a.len();
                        clean_dominated_with(&mut self.nn_a, self.q, &mut scratch.prune);
                        if self.nn_a.len() < grown {
                            self.stale = true;
                        }
                    }
                }
            }
        }
        rnn_b.sort_unstable();
        self.rnn_b = rnn_b;
    }

    /// The current verified answer (B-object ids), sorted.
    #[inline]
    pub fn rnn(&self) -> &[ObjectId] {
        &self.rnn_b
    }

    /// The monitored A-objects.
    pub fn monitored(&self) -> Vec<ObjectId> {
        self.nn_a.iter().map(|&(_, id)| id).collect()
    }

    /// The monitored A-objects with their last-seen positions, without
    /// allocating.
    #[inline]
    pub fn monitored_pairs(&self) -> &[(Point, ObjectId)] {
        &self.nn_a
    }

    /// Number of monitored A-objects (the Figure 9b metric).
    #[inline]
    pub fn num_monitored(&self) -> usize {
        self.nn_a.len()
    }

    /// The alive region.
    #[inline]
    pub fn alive_cells(&self) -> &CellSet {
        &self.alive
    }
}

/// Cost class a tighten search is charged to (see §6).
#[derive(Clone, Copy)]
enum SearchClass {
    Constrained,
    Bounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grids(a: &[(f64, f64)], b: &[(f64, f64)]) -> (Grid, Grid) {
        let space = Aabb::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut ga = Grid::new(space, 8);
        let mut gb = Grid::new(space, 8);
        for (i, &(x, y)) in a.iter().enumerate() {
            ga.insert(ObjectId(i as u32), Point::new(x, y));
        }
        for (i, &(x, y)) in b.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), Point::new(x, y));
        }
        (ga, gb)
    }

    fn oracle(ga: &Grid, gb: &Grid, q: Point, q_id: Option<ObjectId>) -> Vec<ObjectId> {
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        naive::bi_rnn(&a, &b, q, q_id)
    }

    #[test]
    fn basic_split() {
        // One competing A at (8,5); B objects on either side of the
        // bisector x = 6.5 (for q at (5,5)).
        let (ga, gb) = grids(&[(8.0, 5.0)], &[(5.5, 5.0), (7.5, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        assert_eq!(m.rnn(), oracle(&ga, &gb, q, None).as_slice());
        assert_eq!(m.rnn(), &[ObjectId(1000)]);
    }

    #[test]
    fn no_a_objects_means_every_b_is_an_answer() {
        let (ga, gb) = grids(&[], &[(1.0, 1.0), (9.0, 9.0), (5.0, 2.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        assert_eq!(m.rnn().len(), 3);
        assert_eq!(m.num_monitored(), 0);
    }

    #[test]
    fn answer_can_exceed_six() {
        // A single far-away competitor; a dense cluster of B around q.
        let bs: Vec<(f64, f64)> = (0..10)
            .map(|i| (4.0 + 0.2 * i as f64, 5.0 + 0.1 * i as f64))
            .collect();
        let (ga, gb) = grids(&[(9.9, 9.9)], &bs);
        let q = Point::new(4.8, 5.3);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        assert_eq!(m.rnn(), oracle(&ga, &gb, q, None).as_slice());
        assert!(m.rnn().len() > 6, "got only {} answers", m.rnn().len());
    }

    #[test]
    fn no_b_objects_means_empty_answer() {
        let (ga, gb) = grids(&[(2.0, 2.0), (8.0, 8.0)], &[]);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, Point::new(5.0, 5.0), None, &mut ops);
        assert!(m.rnn().is_empty());
    }

    #[test]
    fn initial_matches_oracle_on_pseudorandom_data() {
        let mut state = 31u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..25 {
            let a: Vec<(f64, f64)> = (0..30).map(|_| (rnd(), rnd())).collect();
            let b: Vec<(f64, f64)> = (0..50).map(|_| (rnd(), rnd())).collect();
            let (ga, gb) = grids(&a, &b);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
            assert_eq!(
                m.rnn(),
                oracle(&ga, &gb, q, None).as_slice(),
                "round {round}"
            );
        }
    }

    #[test]
    fn query_record_in_a_grid_is_excluded() {
        let (mut ga, gb) = grids(&[(8.0, 5.0)], &[(5.5, 5.0)]);
        ga.insert(ObjectId(99), Point::new(5.0, 5.0)); // the query itself
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, Some(ObjectId(99)), &mut ops);
        assert_eq!(m.rnn(), oracle(&ga, &gb, q, Some(ObjectId(99))).as_slice());
        assert_eq!(m.rnn(), &[ObjectId(1000)]);
    }

    #[test]
    fn incremental_follows_paper_figure_3c() {
        // Monitored A-objects move; a previously answering B-object gets a
        // new nearest A and drops out.
        let (mut ga, gb) = grids(&[(8.0, 5.0)], &[(5.5, 5.0), (7.0, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        // Initially both B at 5.5 and 7.0 vs A at 8.0: bisector x=6.5 →
        // only the first is an RNN? 7.0 is closer to 8.0 (1.0) than to q
        // (2.0) → blocked.
        assert_eq!(m.rnn(), &[ObjectId(1000)]);
        // The A-object swings between the query and the answering B.
        ga.update(ObjectId(0), Point::new(5.4, 5.0));
        m.incremental(&ga, &gb, q, &mut ops);
        assert_eq!(m.rnn(), oracle(&ga, &gb, q, None).as_slice());
        assert!(m.rnn().is_empty(), "B at 5.5 is now blocked by A at 5.4");
    }

    #[test]
    fn long_random_run_matches_oracle_every_tick() {
        let mut state = 777u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let a: Vec<(f64, f64)> = (0..25).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let b: Vec<(f64, f64)> = (0..40).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let (mut ga, mut gb) = grids(&a, &b);
        let mut q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        for tick in 0..40 {
            for i in 0..25u32 {
                if rnd() < 0.3 {
                    let p = ga.position(ObjectId(i)).unwrap();
                    ga.update(
                        ObjectId(i),
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            for i in 0..40u32 {
                if rnd() < 0.3 {
                    let id = ObjectId(1000 + i);
                    let p = gb.position(id).unwrap();
                    gb.update(
                        id,
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            q = Point::new(
                (q.x + (rnd() - 0.5)).clamp(0.0, 10.0),
                (q.y + (rnd() - 0.5)).clamp(0.0, 10.0),
            );
            m.incremental(&ga, &gb, q, &mut ops);
            assert_eq!(m.rnn(), oracle(&ga, &gb, q, None).as_slice(), "tick {tick}");
        }
    }
}
