//! Continuous bichromatic **reverse k-nearest neighbors**: a B-object is
//! an answer iff the query is among its `k` nearest A-objects (fewer than
//! `k` A-objects strictly closer).
//!
//! Same structure as the order-1 monitor, with order-`k` dominance, the
//! order-`k` alive region (a cell dies only when ≥ `k` A-bisectors fully
//! exclude it), and a capped blocker count for verification. Unlike the
//! order-1 monitor, Phase II does not grow the monitored set from
//! blockers: a blocked B-object stays inside the alive region and is
//! simply re-verified each tick, which keeps the monitored set at the
//! Phase-I `≤ 6k` bound.

use igern_geom::Point;
use igern_grid::{
    count_closer_than_feed, nearest_feed, nearest_in_cells_with_feed, CellFeed, CellSet, Grid,
    ObjectId, OpCounters,
};

use crate::prune::{clean_dominated_k_with, recompute_alive_k_into};
use crate::scratch::EvalScratch;

/// Continuous bichromatic RkNN query state.
#[derive(Debug, Clone)]
pub struct BiIgernK {
    k: usize,
    q_id: Option<ObjectId>,
    q: Point,
    alive: CellSet,
    nn_a: Vec<(Point, ObjectId)>,
    rnn_b: Vec<ObjectId>,
    stale: bool,
}

impl BiIgernK {
    /// Initial step.
    ///
    /// # Panics
    /// Panics when `k == 0` or the grids disagree on cell geometry.
    pub fn initial(
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
    ) -> Self {
        Self::initial_in(grid_a, grid_b, q, q_id, k, ops, &mut EvalScratch::default())
    }

    /// [`BiIgernK::initial`] with caller-provided evaluation scratch.
    ///
    /// # Panics
    /// Panics when `k == 0` or the grids disagree on cell geometry.
    pub fn initial_in(
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        Self::initial_in_feed(grid_a, grid_b, None, None, q, q_id, k, ops, scratch)
    }

    /// [`BiIgernK::initial_in`] reading primed A-/B-grid cells from
    /// `feed_a`/`feed_b` (the batch evaluator's shared-scan caches);
    /// bit-identical to the `None`-feed form.
    ///
    /// # Panics
    /// Panics when `k == 0` or the grids disagree on cell geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn initial_in_feed(
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        q: Point,
        q_id: Option<ObjectId>,
        k: usize,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) -> Self {
        assert!(k >= 1, "k must be positive");
        assert_eq!(
            grid_a.num_cells(),
            grid_b.num_cells(),
            "A- and B-grids must share cell geometry"
        );
        let mut state = BiIgernK {
            k,
            q_id,
            q,
            alive: CellSet::full(grid_b.num_cells()),
            nn_a: Vec::new(),
            rnn_b: Vec::new(),
            stale: false,
        };
        state.tighten(grid_a, grid_b, feed_a, ops, true, scratch);
        state.verify(grid_a, grid_b, feed_a, feed_b, ops);
        state
    }

    /// Incremental step, run every Δt.
    pub fn incremental(&mut self, grid_a: &Grid, grid_b: &Grid, q: Point, ops: &mut OpCounters) {
        self.incremental_in(grid_a, grid_b, q, ops, &mut EvalScratch::default());
    }

    /// [`BiIgernK::incremental`] with caller-provided evaluation scratch;
    /// a warm scratch makes the steady-state tick allocation-free.
    pub fn incremental_in(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        self.incremental_in_feed(grid_a, grid_b, None, None, q, ops, scratch);
    }

    /// [`BiIgernK::incremental_in`] reading primed cells from
    /// `feed_a`/`feed_b`; see [`BiIgernK::initial_in_feed`].
    #[allow(clippy::too_many_arguments)]
    pub fn incremental_in_feed(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        q: Point,
        ops: &mut OpCounters,
        scratch: &mut EvalScratch,
    ) {
        let q_moved = q != self.q;
        let mut a_moved = false;
        self.nn_a
            .retain_mut(|(pos, id)| match grid_a.position(*id) {
                Some(p) => {
                    if p != *pos {
                        a_moved = true;
                        *pos = p;
                    }
                    true
                }
                None => {
                    a_moved = true;
                    false
                }
            });
        self.q = q;
        if q_moved || a_moved || self.stale {
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.nn_a.iter().map(|&(p, _)| p));
            recompute_alive_k_into(
                grid_b,
                q,
                sites,
                self.k,
                &mut self.alive,
                &mut scratch.prune,
            );
            self.stale = false;
        }
        self.tighten(grid_a, grid_b, feed_a, ops, false, scratch);
        let grown = self.nn_a.len();
        clean_dominated_k_with(&mut self.nn_a, q, self.k, &mut scratch.prune);
        if self.nn_a.len() < grown {
            self.stale = true;
        }
        self.verify(grid_a, grid_b, feed_a, feed_b, ops);
    }

    /// Phase-I loop at order `k` over the A-grid.
    fn tighten(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        ops: &mut OpCounters,
        initial: bool,
        scratch: &mut EvalScratch,
    ) {
        loop {
            if initial {
                ops.nn_c += 1;
            } else {
                ops.nn_b += 1;
            }
            let q_id = self.q_id;
            let q = self.q;
            let k = self.k;
            let nn_a = &self.nn_a;
            let next = if nn_a.is_empty() {
                nearest_feed(grid_a, feed_a, self.q, q_id, ops)
            } else {
                nearest_in_cells_with_feed(
                    grid_a,
                    feed_a,
                    self.q,
                    &self.alive,
                    |id, pos| {
                        if Some(id) == q_id || nn_a.iter().any(|&(_, c)| c == id) {
                            return false;
                        }
                        let d_q = pos.dist_sq(q);
                        let dominators = nn_a
                            .iter()
                            .filter(|&&(cp, _)| pos.dist_sq(cp) < d_q)
                            .count();
                        dominators < k
                    },
                    ops,
                    &mut scratch.cell_order,
                )
            };
            let Some(n) = next else { break };
            self.nn_a.push((n.pos, n.id));
            let sites = &mut scratch.sites;
            sites.clear();
            sites.extend(self.nn_a.iter().map(|&(p, _)| p));
            recompute_alive_k_into(
                grid_b,
                self.q,
                sites,
                self.k,
                &mut self.alive,
                &mut scratch.prune,
            );
        }
    }

    /// Phase-II verification at order `k`: for every B-object in the
    /// alive cells, count A-objects strictly closer than the query (cap
    /// `k`); fewer than `k` means it is an answer.
    fn verify(
        &mut self,
        grid_a: &Grid,
        grid_b: &Grid,
        feed_a: Option<&CellFeed>,
        feed_b: Option<&CellFeed>,
        ops: &mut OpCounters,
    ) {
        let mut rnn_b = std::mem::take(&mut self.rnn_b);
        rnn_b.clear();
        for c in self.alive.iter() {
            if let Some(entries) = feed_b.and_then(|f| f.get(c)) {
                // Feed-primed cell: replay the cached bucket — same order,
                // same desync counting as the direct scan below.
                for e in entries {
                    if !e.live {
                        ops.desyncs += 1;
                        continue;
                    }
                    self.verify_one(grid_a, feed_a, e.id, e.pos, ops, &mut rnn_b);
                }
                continue;
            }
            for &ob in grid_b.objects_in(c) {
                let Some(pos) = grid_b.position(ob) else {
                    // Bucket/position desync: treat the B-object as
                    // removed and keep verifying instead of panicking.
                    ops.desyncs += 1;
                    continue;
                };
                self.verify_one(grid_a, feed_a, ob, pos, ops, &mut rnn_b);
            }
        }
        rnn_b.sort_unstable();
        self.rnn_b = rnn_b;
    }

    /// Verify one alive B-object: fewer than `k` A-objects strictly
    /// closer than the query means it is an answer.
    fn verify_one(
        &self,
        grid_a: &Grid,
        feed_a: Option<&CellFeed>,
        ob: ObjectId,
        pos: Point,
        ops: &mut OpCounters,
        rnn_b: &mut Vec<ObjectId>,
    ) {
        let d_q = pos.dist_sq(self.q);
        // Object-level prefilter mirroring the order-1 monitor:
        // ≥ k monitored A-objects strictly closer settles it.
        let monitored_blockers = self
            .nn_a
            .iter()
            .filter(|&&(ap, _)| pos.dist_sq(ap) < d_q)
            .count();
        if monitored_blockers >= self.k {
            return;
        }
        ops.verifications += 1;
        let single;
        let exclude: &[ObjectId] = match self.q_id {
            Some(qid) => {
                single = [qid];
                &single
            }
            None => &[],
        };
        if count_closer_than_feed(grid_a, feed_a, pos, d_q, self.k, exclude, ops) < self.k {
            rnn_b.push(ob);
        }
    }

    /// The current verified answer (B-object ids), sorted.
    #[inline]
    pub fn rnn(&self) -> &[ObjectId] {
        &self.rnn_b
    }

    /// The query order `k`.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The monitored A-objects.
    pub fn monitored(&self) -> Vec<ObjectId> {
        self.nn_a.iter().map(|&(_, id)| id).collect()
    }

    /// The monitored A-objects with their cached positions.
    #[inline]
    pub fn monitored_pairs(&self) -> &[(Point, ObjectId)] {
        &self.nn_a
    }

    /// Number of monitored A-objects.
    #[inline]
    pub fn num_monitored(&self) -> usize {
        self.nn_a.len()
    }

    /// The alive region.
    #[inline]
    pub fn alive_cells(&self) -> &CellSet {
        &self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use igern_geom::Aabb;

    fn grids(a: &[(f64, f64)], b: &[(f64, f64)]) -> (Grid, Grid) {
        let space = Aabb::from_coords(0.0, 0.0, 10.0, 10.0);
        let mut ga = Grid::new(space, 8);
        let mut gb = Grid::new(space, 8);
        for (i, &(x, y)) in a.iter().enumerate() {
            ga.insert(ObjectId(i as u32), Point::new(x, y));
        }
        for (i, &(x, y)) in b.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), Point::new(x, y));
        }
        (ga, gb)
    }

    fn oracle(ga: &Grid, gb: &Grid, q: Point, k: usize) -> Vec<ObjectId> {
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        naive::bi_rknn(&a, &b, q, None, k)
    }

    #[test]
    fn k1_matches_the_plain_monitor() {
        let (ga, gb) = grids(
            &[(8.0, 5.0), (2.0, 2.0), (5.0, 9.0)],
            &[(5.5, 5.0), (7.5, 5.0), (1.0, 1.0), (5.0, 8.0)],
        );
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mk = BiIgernK::initial(&ga, &gb, q, None, 1, &mut ops);
        let m1 = crate::BiIgern::initial(&ga, &gb, q, None, &mut ops);
        assert_eq!(mk.rnn(), m1.rnn());
    }

    #[test]
    fn higher_k_admits_blocked_objects() {
        // One competing A at (8,5); B at (7.5,5) is blocked for k=1 but
        // admitted for k=2 (only one closer A).
        let (ga, gb) = grids(&[(8.0, 5.0)], &[(5.5, 5.0), (7.5, 5.0)]);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let m1 = BiIgernK::initial(&ga, &gb, q, None, 1, &mut ops);
        assert_eq!(m1.rnn().len(), 1);
        let m2 = BiIgernK::initial(&ga, &gb, q, None, 2, &mut ops);
        assert_eq!(m2.rnn().len(), 2);
    }

    #[test]
    fn initial_matches_oracle_for_various_k() {
        let mut state = 83u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0
        };
        for round in 0..12 {
            let a: Vec<(f64, f64)> = (0..20).map(|_| (rnd(), rnd())).collect();
            let b: Vec<(f64, f64)> = (0..35).map(|_| (rnd(), rnd())).collect();
            let (ga, gb) = grids(&a, &b);
            let q = Point::new(rnd(), rnd());
            let mut ops = OpCounters::new();
            for k in [1usize, 2, 4] {
                let m = BiIgernK::initial(&ga, &gb, q, None, k, &mut ops);
                assert_eq!(
                    m.rnn(),
                    oracle(&ga, &gb, q, k).as_slice(),
                    "round {round} k {k}"
                );
            }
        }
    }

    #[test]
    fn incremental_matches_oracle_under_movement() {
        let mut state = 97u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        let a: Vec<(f64, f64)> = (0..15).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let b: Vec<(f64, f64)> = (0..25).map(|_| (rnd() * 10.0, rnd() * 10.0)).collect();
        let (mut ga, mut gb) = grids(&a, &b);
        let q = Point::new(5.0, 5.0);
        let mut ops = OpCounters::new();
        let mut m = BiIgernK::initial(&ga, &gb, q, None, 2, &mut ops);
        for tick in 0..25 {
            for i in 0..15u32 {
                if rnd() < 0.3 {
                    let p = ga.position(ObjectId(i)).unwrap();
                    ga.update(
                        ObjectId(i),
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            for i in 0..25u32 {
                if rnd() < 0.3 {
                    let id = ObjectId(1000 + i);
                    let p = gb.position(id).unwrap();
                    gb.update(
                        id,
                        Point::new(
                            (p.x + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                            (p.y + (rnd() - 0.5) * 2.0).clamp(0.0, 10.0),
                        ),
                    );
                }
            }
            m.incremental(&ga, &gb, q, &mut ops);
            assert_eq!(m.rnn(), oracle(&ga, &gb, q, 2).as_slice(), "tick {tick}");
        }
    }

    #[test]
    fn no_a_objects_admits_every_b() {
        let (ga, gb) = grids(&[], &[(1.0, 1.0), (9.0, 9.0)]);
        let mut ops = OpCounters::new();
        let m = BiIgernK::initial(&ga, &gb, Point::new(5.0, 5.0), None, 3, &mut ops);
        assert_eq!(m.rnn().len(), 2);
    }
}
