//! Continuous bichromatic reverse-nearest-neighbor evaluation
//! (paper §4: Algorithms 3 and 4) — the first continuous algorithm for
//! the bichromatic case.

mod igern;
mod krnn;

pub use igern::BiIgern;
pub use krnn::BiIgernK;
