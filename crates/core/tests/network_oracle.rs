//! Network-distance correctness gate: every network-mode monitor must
//! answer bit-identically to the brute-force Dijkstra oracles in
//! `igern_core::naive`, across the whole algorithm family, k ∈ {1, 2, 4},
//! batch on/off, routed and forced evaluation, and mid-stream population
//! churn — plus direct admissibility fuzz for the Euclidean lower bound
//! the monitors prune with.

use std::sync::Arc;

use igern_core::naive;
use igern_core::processor::{Algorithm, Processor};
use igern_core::{net_lb, DistanceMode, NetScratch, NetworkSpace, ObjectKind, SpatialStore};
use igern_geom::{Aabb, Point};
use igern_grid::ObjectId;
use igern_mobgen::workload::Mover;
use igern_mobgen::{build_synthetic_network, NetworkMover, SyntheticNetworkConfig};

const SPACE: Aabb = Aabb {
    min: Point::new(0.0, 0.0),
    max: Point::new(1000.0, 1000.0),
};

fn network(seed: u64) -> igern_mobgen::RoadNetwork {
    build_synthetic_network(&SyntheticNetworkConfig {
        k: 5,
        space: SPACE,
        jitter: 0.2,
        highway_stride: 2,
        prune_fraction: 0.1,
        seed,
    })
}

/// The fuzz matrix: every algorithm family at k ∈ {1, 2, 4}.
fn all_queries() -> Vec<Algorithm> {
    let mut v = vec![
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::TplRepeat,
        Algorithm::IgernBi,
        Algorithm::VoronoiRepeat,
    ];
    for k in [1usize, 2, 4] {
        v.push(Algorithm::IgernMonoK(k));
        v.push(Algorithm::IgernBiK(k));
        v.push(Algorithm::Knn(k));
    }
    v
}

/// The network-mode expected answer for `algo`, straight from the
/// brute-force oracles.
fn expected(
    ns: &NetworkSpace,
    scratch: &mut NetScratch,
    store: &SpatialStore,
    q_obj: ObjectId,
    algo: Algorithm,
) -> Vec<ObjectId> {
    let q = store.position(q_obj).expect("anchor alive");
    let mut all: Vec<(ObjectId, Point)> = store.all().iter().collect();
    all.sort_unstable_by_key(|&(id, _)| id);
    let a: Vec<_> = all
        .iter()
        .copied()
        .filter(|&(id, _)| store.kind(id) == ObjectKind::A)
        .collect();
    let b: Vec<_> = all
        .iter()
        .copied()
        .filter(|&(id, _)| store.kind(id) == ObjectKind::B)
        .collect();
    let qi = Some(q_obj);
    match algo {
        Algorithm::IgernMono | Algorithm::Crnn | Algorithm::TplRepeat => {
            naive::mono_rnn_net(ns, scratch, &all, q, qi)
        }
        Algorithm::IgernMonoK(k) => naive::mono_rknn_net(ns, scratch, &all, q, qi, k),
        Algorithm::IgernBi | Algorithm::VoronoiRepeat => {
            naive::bi_rnn_net(ns, scratch, &a, &b, q, qi)
        }
        Algorithm::IgernBiK(k) => naive::bi_rknn_net(ns, scratch, &a, &b, q, qi, k),
        Algorithm::Knn(k) => naive::knn_net(ns, scratch, &all, q, qi, k),
    }
}

/// Build a store over the mover's current population: even ids are kind
/// A (query side), odd ids kind B.
fn store_for(mover: &NetworkMover, ns: &Arc<NetworkSpace>, grid: usize) -> SpatialStore {
    let n = mover.len();
    let kinds: Vec<ObjectKind> = (0..n)
        .map(|i| {
            if i % 2 == 0 {
                ObjectKind::A
            } else {
                ObjectKind::B
            }
        })
        .collect();
    let positions: Vec<Point> = (0..n as u32).map(|i| mover.position(i)).collect();
    let mut store = SpatialStore::new(SPACE, grid, kinds);
    store.load(&positions);
    store.set_network(Arc::clone(ns));
    store
}

/// The tentpole gate: all algorithms × k × churn, routed, against the
/// oracles every tick, with batch evaluation required bit-identical.
#[test]
fn network_monitors_match_oracles_under_churn() {
    for seed in [3u64, 17] {
        let net = network(seed);
        let ns = Arc::new(NetworkSpace::from_network(&net));
        let mut mover = NetworkMover::new(net, 24, seed);
        let mut p = Processor::new(store_for(&mover, &ns, 16));
        let mut p_batch = Processor::new(store_for(&mover, &ns, 16));
        p_batch.set_batch(true);
        let mut oracle_scratch = NetScratch::default();

        let algos = all_queries();
        let mut handles = Vec::new();
        for (i, &algo) in algos.iter().enumerate() {
            // Anchors cycle through kind-A objects (even ids).
            let anchor = ObjectId(((i * 2) % mover.len()) as u32);
            handles.push((
                p.add_query_in(anchor, algo, DistanceMode::Network),
                p_batch.add_query_in(anchor, algo, DistanceMode::Network),
                anchor,
                algo,
            ));
        }
        p.evaluate_all();
        p_batch.evaluate_all();

        for tick in 0..24u64 {
            // Mid-stream churn: a static B joins at tick 8, an A at tick
            // 12; the B leaves at tick 16.
            if tick == 8 {
                for r in [&mut p, &mut p_batch] {
                    r.insert_object(ObjectId(200), ObjectKind::B, Point::new(480.0, 520.0));
                }
            }
            if tick == 12 {
                for r in [&mut p, &mut p_batch] {
                    r.insert_object(ObjectId(201), ObjectKind::A, Point::new(30.0, 950.0));
                }
            }
            if tick == 16 {
                for r in [&mut p, &mut p_batch] {
                    r.remove_object(ObjectId(200));
                }
            }
            let updates: Vec<(ObjectId, Point)> = mover
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            p.step(&updates);
            p_batch.step(&updates);
            for &(h, hb, anchor, algo) in &handles {
                let want = expected(&ns, &mut oracle_scratch, p.store(), anchor, algo);
                assert_eq!(
                    p.answer(h),
                    want.as_slice(),
                    "seed {seed} tick {tick} algo {algo:?} anchor {anchor}"
                );
                assert_eq!(
                    p_batch.answer(hb),
                    want.as_slice(),
                    "batch mismatch: seed {seed} tick {tick} algo {algo:?}"
                );
            }
        }
    }
}

/// Skip routing must be answer-invisible for network monitors: they
/// publish no watch set, so they may only be skipped on fully quiet
/// ticks — force a quiet tick and a dirty tick and compare to a
/// never-skipping twin.
#[test]
fn network_skip_routing_is_answer_invisible() {
    let net = network(9);
    let ns = Arc::new(NetworkSpace::from_network(&net));
    let mut mover = NetworkMover::new(net, 16, 9);
    let mut routed = Processor::new(store_for(&mover, &ns, 16));
    let mut forced = Processor::new(store_for(&mover, &ns, 16));
    forced.set_skip_routing(false);
    let q_r = routed.add_query_in(ObjectId(0), Algorithm::IgernMonoK(2), DistanceMode::Network);
    let q_f = forced.add_query_in(ObjectId(0), Algorithm::IgernMonoK(2), DistanceMode::Network);
    routed.evaluate_all();
    forced.evaluate_all();
    for round in 0..10 {
        // Alternate quiet ticks (skip fires) with real movement.
        let updates: Vec<(ObjectId, Point)> = if round % 2 == 0 {
            Vec::new()
        } else {
            mover
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect()
        };
        routed.step(&updates);
        forced.step(&updates);
        assert_eq!(routed.answer(q_r), forced.answer(q_f), "round {round}");
    }
}

/// Admissibility fuzz: for arbitrary raw positions (on- and off-network
/// alike), the deflated Euclidean distance between snapped points never
/// exceeds the network distance — and therefore the disk
/// `disk(o, d_net(q, o))` the monitors sweep always contains every true
/// blocker. A violation here is exactly "pruning discarded a true
/// network neighbor".
#[test]
fn euclidean_lower_bound_never_discards_a_network_neighbor() {
    let net = network(5);
    let ns = NetworkSpace::from_network(&net);
    let mut scratch = NetScratch::default();
    let mut state = 0xabcdu64;
    let mut rnd = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for _ in 0..200 {
        let q = ns.snap(Point::new(rnd() * 1000.0, rnd() * 1000.0));
        let o = ns.snap(Point::new(rnd() * 1000.0, rnd() * 1000.0));
        let d_net = ns.dist(&mut scratch, &q, &o);
        assert!(
            net_lb(q.point.dist(o.point)) <= d_net,
            "lower bound exceeded network distance"
        );
        // Every point network-closer to o than q must fall inside the
        // Euclidean pruning disk around o.
        for _ in 0..20 {
            let other = ns.snap(Point::new(rnd() * 1000.0, rnd() * 1000.0));
            let d_oo = ns.dist(&mut scratch, &o, &other);
            if d_oo < d_net {
                assert!(
                    net_lb(o.point.dist(other.point)) < d_net,
                    "true network neighbor outside the pruning disk: \
                     d_net(o,o')={d_oo} bound={d_net}"
                );
            }
        }
    }
}

/// Network answers must be independent of scratch warmth and of which
/// lane evaluates them: two processors with different evaluation
/// histories agree bit-for-bit.
#[test]
fn answers_are_independent_of_memo_warmth() {
    let net = network(21);
    let ns = Arc::new(NetworkSpace::from_network(&net));
    let mut mover = NetworkMover::new(net, 12, 21);
    // `warm` runs extra queries first so its Dijkstra memos differ.
    let mut warm = Processor::new(store_for(&mover, &ns, 8));
    let mut cold = Processor::new(store_for(&mover, &ns, 8));
    for i in 0..6 {
        warm.add_query_in(ObjectId(i * 2), Algorithm::Knn(3), DistanceMode::Network);
    }
    warm.evaluate_all();
    let qw = warm.add_query_in(ObjectId(2), Algorithm::IgernMonoK(2), DistanceMode::Network);
    let qc = cold.add_query_in(ObjectId(2), Algorithm::IgernMonoK(2), DistanceMode::Network);
    for _ in 0..8 {
        let updates: Vec<(ObjectId, Point)> = mover
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        warm.step(&updates);
        cold.step(&updates);
        assert_eq!(warm.answer(qw), cold.answer(qc));
    }
}

/// Registration guard: network mode without an attached network must be
/// rejected up front, not fail deep inside evaluation.
#[test]
#[should_panic(expected = "attached road network")]
fn network_mode_requires_a_network() {
    let mut store = SpatialStore::new(SPACE, 8, vec![ObjectKind::A]);
    store.load(&[Point::new(1.0, 1.0)]);
    let mut p = Processor::new(store);
    p.add_query_in(ObjectId(0), Algorithm::IgernMono, DistanceMode::Network);
}
