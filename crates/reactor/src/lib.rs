//! `igern-reactor`: a std-only readiness-polled event loop.
//!
//! The serving layer historically spent two OS threads per accepted
//! connection; at the subscriber populations the ROADMAP targets that
//! is tens of thousands of threads. This crate supplies the missing
//! substrate: a single-threaded [`Reactor`] multiplexing many
//! registered sources, built directly on raw `epoll` (Linux) or
//! portable `poll(2)` through thin `extern "C"` bindings — no external
//! crates, matching the workspace's std-only rule.
//!
//! One reactor instance belongs to one loop thread. Cross-thread
//! interaction happens through two narrow channels:
//!
//! * [`Waker`] — clonable, prods the loop out of its wait. Wakes are
//!   **batched**: an armed flag coalesces any number of `wake()` calls
//!   between two waits into at most one `write(2)`, so a tick fanning
//!   frames to hundreds of connections on the same loop costs one
//!   syscall, not hundreds.
//! * [`ExternalHandle`] — readiness for fd-less sources (the
//!   in-process memory transport). Producers flip ready bits and wake
//!   the loop; the reactor folds them into the same [`Event`] stream
//!   as kernel-reported fds.
//!
//! Deadline timers ride the poll timeout: [`Reactor::set_timer`] arms
//! a per-token deadline (binary heap, lazy deletion) and expiry is
//! delivered as an [`Event`] with `timer` set.
//!
//! Readiness is level-triggered by default. [`Mode::Edge`] maps to
//! `EPOLLET` on the epoll backend; the poll backend has no edge
//! support and stays level, which is sound for correctly written
//! consumers (edge is an optimisation, spurious readiness is always
//! permitted).

mod external;
mod poller;
mod timer;

pub mod sys;

pub use external::ExternalHandle;
pub use poller::{Backend, WaitOutcome};

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Caller-chosen identifier carried on every event. The reactor never
/// interprets it beyond equality; servers typically pack a slab slot
/// index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub u64);

/// Which readiness directions a registration listens for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    pub const NONE: Interest = Interest(0);
    pub const READABLE: Interest = Interest(1);
    pub const WRITABLE: Interest = Interest(2);
    pub const BOTH: Interest = Interest(3);

    pub fn readable(self) -> bool {
        self.0 & 1 != 0
    }

    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// Level vs edge readiness reporting (see crate docs for backend
/// caveats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    Level,
    Edge,
}

/// One readiness (or timer-expiry) notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
    /// Peer hangup / error; the source should be drained then dropped.
    pub hangup: bool,
    /// Set iff this event is a deadline-timer expiry.
    pub timer: bool,
}

/// Clonable cross-thread wakeup handle (see crate docs on batching).
#[derive(Clone)]
pub struct Waker {
    shared: Arc<poller::WakeShared>,
}

impl Waker {
    /// Prod the owning reactor out of its current (or next) wait.
    /// Coalesced: repeated calls before the loop runs again are free.
    pub fn wake(&self) {
        self.shared.wake();
    }
}

/// The event loop core. `Send` but not `Sync`: build it anywhere (e.g.
/// on a main thread, so [`Waker`]s exist before the loop runs), move it
/// into its loop thread, and share only [`Waker`]s and
/// [`ExternalHandle`]s across threads.
pub struct Reactor {
    poller: poller::Poller,
    timers: timer::Timers,
    externals: external::Externals,
    backend: Backend,
    /// Scratch for external drains, reused across polls.
    ext_buf: Vec<(Token, bool, bool, bool)>,
    timer_buf: Vec<Token>,
}

impl Reactor {
    /// Reactor on the host's preferred backend (epoll on Linux).
    pub fn new() -> io::Result<Reactor> {
        Reactor::with_backend(Backend::default_for_host())
    }

    pub fn with_backend(backend: Backend) -> io::Result<Reactor> {
        Ok(Reactor {
            poller: poller::Poller::new(backend)?,
            timers: timer::Timers::default(),
            externals: external::Externals::new(),
            backend,
            ext_buf: Vec::new(),
            timer_buf: Vec::new(),
        })
    }

    pub fn backend(&self) -> Backend {
        self.backend
    }

    pub fn waker(&self) -> Waker {
        Waker {
            shared: self.poller.wake_shared(),
        }
    }

    /// Register a kernel-pollable fd under `token`.
    pub fn register(
        &mut self,
        fd: sys::Fd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        self.poller.register(fd, token, interest, mode)
    }

    /// Change interest/mode for an already-registered fd.
    pub fn reregister(
        &mut self,
        fd: sys::Fd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        self.poller.reregister(fd, token, interest, mode)
    }

    pub fn deregister(&mut self, fd: sys::Fd) -> io::Result<()> {
        self.poller.deregister(fd)
    }

    /// Create an fd-less readiness source delivered under `token`.
    pub fn external(&self, token: Token) -> ExternalHandle {
        self.externals.create(token, self.poller.wake_shared())
    }

    /// Arm (or re-arm) the deadline timer for `token`.
    pub fn set_timer(&mut self, token: Token, deadline: Instant) {
        self.timers.set(token, deadline);
    }

    pub fn cancel_timer(&mut self, token: Token) {
        self.timers.cancel(token);
    }

    /// Wait for events up to `timeout` (forever if `None`), appending
    /// into `out`. Returns what the underlying wait observed; `out`
    /// additionally receives external-source and timer events, in that
    /// order after the fd events.
    pub fn poll(
        &mut self,
        out: &mut Vec<Event>,
        timeout: Option<Duration>,
    ) -> io::Result<WaitOutcome> {
        let now = Instant::now();
        let mut wait_ms = match timeout {
            None => -1i64,
            Some(d) => d.as_millis().min(i32::MAX as u128) as i64,
        };
        if let Some(deadline) = self.timers.next_deadline() {
            // Ceil to ms so we never wake a hair early and spin.
            let until = deadline
                .saturating_duration_since(now)
                .as_millis()
                .saturating_add(1)
                .min(i32::MAX as u128) as i64;
            wait_ms = if wait_ms < 0 {
                until
            } else {
                wait_ms.min(until)
            };
        }
        let outcome = self.poller.wait(out, wait_ms as sys::c_int)?;

        self.ext_buf.clear();
        self.externals.drain(&mut self.ext_buf);
        for &(token, readable, writable, hangup) in &self.ext_buf {
            out.push(Event {
                token,
                readable,
                writable,
                hangup,
                timer: false,
            });
        }

        if !self.timers.is_empty() {
            self.timer_buf.clear();
            self.timers.expired(Instant::now(), &mut self.timer_buf);
            for &token in &self.timer_buf {
                out.push(Event {
                    token,
                    readable: false,
                    writable: false,
                    hangup: false,
                    timer: true,
                });
            }
        }
        Ok(outcome)
    }
}

/// `(soft, hard)` RLIMIT_NOFILE for capacity planning / metrics.
pub fn fd_limit() -> Option<(u64, u64)> {
    sys::fd_limit()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::thread;

    fn backends() -> Vec<Backend> {
        if cfg!(any(target_os = "linux", target_os = "android")) {
            vec![Backend::Epoll, Backend::Poll]
        } else {
            vec![Backend::Poll]
        }
    }

    #[test]
    fn pipe_readiness_level() {
        for backend in backends() {
            let mut r = Reactor::with_backend(backend).unwrap();
            let (rx, tx) = sys::sys_pipe_nonblocking().unwrap();
            r.register(rx, Token(7), Interest::READABLE, Mode::Level)
                .unwrap();

            // Nothing written yet: the wait times out with no events.
            let mut out = Vec::new();
            r.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(out.is_empty(), "{backend:?}: spurious event");

            sys::sys_write(tx, b"x").unwrap();
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(1000))).unwrap();
            assert_eq!(out.len(), 1, "{backend:?}");
            assert_eq!(out[0].token, Token(7));
            assert!(out[0].readable);

            // Level-triggered: still readable until drained.
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(1000))).unwrap();
            assert_eq!(out.len(), 1, "{backend:?}: level re-report");

            let mut buf = [0u8; 8];
            assert_eq!(sys::sys_read(rx, &mut buf).unwrap(), 1);
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(out.is_empty(), "{backend:?}: drained but still ready");

            r.deregister(rx).unwrap();
            sys::sys_close(rx);
            sys::sys_close(tx);
        }
    }

    #[test]
    fn writable_interest_toggle() {
        for backend in backends() {
            let mut r = Reactor::with_backend(backend).unwrap();
            let (rx, tx) = sys::sys_pipe_nonblocking().unwrap();
            r.register(tx, Token(1), Interest::READABLE, Mode::Level)
                .unwrap();
            let mut out = Vec::new();
            r.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(out.is_empty(), "{backend:?}: pipe tx is not readable");

            // Flip interest to writable: an empty pipe is writable now.
            r.reregister(tx, Token(1), Interest::WRITABLE, Mode::Level)
                .unwrap();
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(1000))).unwrap();
            assert_eq!(out.len(), 1, "{backend:?}");
            assert!(out[0].writable);

            r.deregister(tx).unwrap();
            sys::sys_close(rx);
            sys::sys_close(tx);
        }
    }

    #[test]
    fn waker_crosses_threads_and_batches() {
        for backend in backends() {
            let mut r = Reactor::with_backend(backend).unwrap();
            let waker = r.waker();
            let (started_tx, started_rx) = mpsc::channel();
            let h = thread::spawn(move || {
                started_rx.recv().unwrap();
                // Many wakes, at most one write reaches the fd.
                for _ in 0..1000 {
                    waker.wake();
                }
            });
            started_tx.send(()).unwrap();
            let mut out = Vec::new();
            let outcome = r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert!(outcome.woken, "{backend:?}: wake lost");
            assert!(
                out.is_empty(),
                "{backend:?}: wake must not surface as event"
            );
            h.join().unwrap();

            // The armed flag was cleared by the drain: a fresh wake
            // still gets through.
            let waker = r.waker();
            waker.wake();
            let outcome = r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert!(outcome.woken, "{backend:?}: re-arm failed");
        }
    }

    #[test]
    fn timer_fires_and_rearm_supersedes() {
        for backend in backends() {
            let mut r = Reactor::with_backend(backend).unwrap();
            let start = Instant::now();
            r.set_timer(Token(3), start + Duration::from_millis(20));
            // Re-arm farther out: only the later deadline is live.
            r.set_timer(Token(3), start + Duration::from_millis(40));
            r.set_timer(Token(4), start + Duration::from_millis(10));
            r.cancel_timer(Token(4));

            let mut out = Vec::new();
            r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            let elapsed = start.elapsed();
            assert_eq!(out.len(), 1, "{backend:?}: {out:?}");
            assert_eq!(out[0].token, Token(3));
            assert!(out[0].timer);
            assert!(
                elapsed >= Duration::from_millis(40),
                "{backend:?}: fired early at {elapsed:?}"
            );

            // One-shot: no refire.
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(20))).unwrap();
            assert!(out.is_empty(), "{backend:?}: timer refired");
        }
    }

    #[test]
    fn external_source_signals_and_coalesces() {
        for backend in backends() {
            let mut r = Reactor::with_backend(backend).unwrap();
            let ext = r.external(Token(9));
            let producer = ext.clone();
            let h = thread::spawn(move || {
                for _ in 0..100 {
                    producer.set_ready(true, false);
                }
                producer.set_ready(false, true);
            });
            h.join().unwrap();

            let mut out = Vec::new();
            r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            // All 101 signals coalesce into exactly one event with the
            // union of the bits.
            assert_eq!(out.len(), 1, "{backend:?}: {out:?}");
            assert_eq!(out[0].token, Token(9));
            assert!(out[0].readable && out[0].writable);

            // Consumed: nothing pending until signalled again.
            out.clear();
            r.poll(&mut out, Some(Duration::from_millis(10))).unwrap();
            assert!(out.is_empty(), "{backend:?}");

            ext.set_hangup();
            out.clear();
            r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(out.len(), 1, "{backend:?}");
            assert!(out[0].hangup && out[0].readable);
        }
    }

    #[test]
    fn fd_limit_reads() {
        let (soft, hard) = fd_limit().expect("getrlimit failed");
        assert!(soft > 0 && hard >= soft);
    }

    #[test]
    fn edge_mode_epoll_reports_once() {
        if !cfg!(any(target_os = "linux", target_os = "android")) {
            return;
        }
        let mut r = Reactor::with_backend(Backend::Epoll).unwrap();
        let (rx, tx) = sys::sys_pipe_nonblocking().unwrap();
        r.register(rx, Token(5), Interest::READABLE, Mode::Edge)
            .unwrap();
        sys::sys_write(tx, b"x").unwrap();
        let mut out = Vec::new();
        r.poll(&mut out, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(out.len(), 1);
        // Edge: not re-reported while the data sits undrained.
        out.clear();
        r.poll(&mut out, Some(Duration::from_millis(20))).unwrap();
        assert!(out.is_empty(), "edge mode re-reported: {out:?}");
        r.deregister(rx).unwrap();
        sys::sys_close(rx);
        sys::sys_close(tx);
    }
}
