//! The two readiness backends behind one enum: raw `epoll` on Linux
//! and a portable `poll(2)` fallback everywhere unix.
//!
//! Both backends own their wakeup fd (an eventfd on Linux, the read
//! end of a nonblocking pipe otherwise) and drain it internally: a
//! wakeup never surfaces as a caller-visible event, it just makes the
//! wait return with [`WaitOutcome::woken`] set.

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::sys;
use crate::{Event, Interest, Mode, Token};

/// Reserved `data` word for the internal wakeup fd.
const WAKE_DATA: u64 = u64::MAX;

/// What one backend wait observed.
#[derive(Debug, Default, Clone, Copy)]
pub struct WaitOutcome {
    /// Caller-visible events delivered into the out buffer.
    pub events: usize,
    /// The wakeup fd fired (and was drained).
    pub woken: bool,
}

/// Shared half of a [`Waker`](crate::Waker): the fd to prod plus the
/// coalescing flag (see [`crate::Waker::wake`]).
pub(crate) struct WakeShared {
    /// Fd written to force the wait to return (eventfd or pipe write
    /// end).
    write_fd: sys::Fd,
    /// True while a wake is pending and not yet consumed — further
    /// wakes skip the syscall, which is what batches N enqueues into
    /// one `write(2)`.
    pub(crate) armed: AtomicBool,
    /// Pipe backends must close the write end separately.
    owns_write_fd: bool,
}

impl WakeShared {
    pub(crate) fn wake(&self) {
        if !self.armed.swap(true, Ordering::AcqRel) {
            // An 8-byte write covers both eventfd (a counter add) and
            // the pipe (one chunk the drain loop empties).
            let _ = sys::sys_write(self.write_fd, &1u64.to_ne_bytes());
        }
    }
}

impl Drop for WakeShared {
    fn drop(&mut self) {
        if self.owns_write_fd {
            sys::sys_close(self.write_fd);
        }
    }
}

/// Backend selector. [`Backend::default_for_host`] picks epoll on
/// Linux and poll elsewhere; tests pin both explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Raw `epoll` (Linux/Android only).
    Epoll,
    /// Portable `poll(2)` — level-triggered; edge-mode registrations
    /// degrade to level semantics (spurious re-reports, which the
    /// readiness contract permits).
    Poll,
}

impl Backend {
    pub fn default_for_host() -> Backend {
        if cfg!(any(target_os = "linux", target_os = "android")) {
            Backend::Epoll
        } else {
            Backend::Poll
        }
    }

    /// Parse a CLI/env-style name (`epoll` | `poll`).
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "epoll" => Some(Backend::Epoll),
            "poll" => Some(Backend::Poll),
            _ => None,
        }
    }
}

pub(crate) enum Poller {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    Epoll(EpollPoller),
    Poll(PollPoller),
}

impl Poller {
    pub(crate) fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Backend::Epoll => Ok(Poller::Epoll(EpollPoller::new()?)),
            #[cfg(not(any(target_os = "linux", target_os = "android")))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll is Linux-only; use Backend::Poll",
            )),
            Backend::Poll => Ok(Poller::Poll(PollPoller::new()?)),
        }
    }

    pub(crate) fn wake_shared(&self) -> Arc<WakeShared> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Epoll(p) => Arc::clone(&p.wake),
            Poller::Poll(p) => Arc::clone(&p.wake),
        }
    }

    pub(crate) fn register(
        &mut self,
        fd: sys::Fd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_ADD, fd, token, interest, mode),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    pub(crate) fn reregister(
        &mut self,
        fd: sys::Fd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Epoll(p) => p.ctl(sys::EPOLL_CTL_MOD, fd, token, interest, mode),
            Poller::Poll(p) => p.register(fd, token, interest),
        }
    }

    pub(crate) fn deregister(&mut self, fd: sys::Fd) -> io::Result<()> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Epoll(p) => p.ctl(
                sys::EPOLL_CTL_DEL,
                fd,
                Token(0),
                Interest::NONE,
                Mode::Level,
            ),
            Poller::Poll(p) => {
                p.regs.retain(|r| r.fd != fd);
                Ok(())
            }
        }
    }

    pub(crate) fn wait(
        &mut self,
        out: &mut Vec<Event>,
        timeout_ms: sys::c_int,
    ) -> io::Result<WaitOutcome> {
        match self {
            #[cfg(any(target_os = "linux", target_os = "android"))]
            Poller::Epoll(p) => p.wait(out, timeout_ms),
            Poller::Poll(p) => p.wait(out, timeout_ms),
        }
    }
}

/// Drain a wakeup fd (eventfd or pipe read end) until empty.
fn drain_wake_fd(fd: sys::Fd) {
    let mut buf = [0u8; 64];
    while matches!(sys::sys_read(fd, &mut buf), Ok(n) if n > 0) {}
}

// ---------------------------------------------------------------- epoll

#[cfg(any(target_os = "linux", target_os = "android"))]
pub(crate) struct EpollPoller {
    epfd: sys::Fd,
    /// The eventfd, registered level-triggered under `WAKE_DATA`.
    wake_fd: sys::Fd,
    wake: Arc<WakeShared>,
    buf: Vec<sys::epoll_event>,
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl EpollPoller {
    fn new() -> io::Result<EpollPoller> {
        let epfd = sys::sys_epoll_create()?;
        let wake_fd = match sys::sys_eventfd() {
            Ok(fd) => fd,
            Err(e) => {
                sys::sys_close(epfd);
                return Err(e);
            }
        };
        if let Err(e) =
            sys::sys_epoll_ctl(epfd, sys::EPOLL_CTL_ADD, wake_fd, sys::EPOLLIN, WAKE_DATA)
        {
            sys::sys_close(wake_fd);
            sys::sys_close(epfd);
            return Err(e);
        }
        Ok(EpollPoller {
            epfd,
            wake_fd,
            wake: Arc::new(WakeShared {
                write_fd: wake_fd,
                armed: AtomicBool::new(false),
                // The eventfd is closed as `wake_fd` below.
                owns_write_fd: false,
            }),
            buf: vec![sys::epoll_event { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(
        &mut self,
        op: sys::c_int,
        fd: sys::Fd,
        token: Token,
        interest: Interest,
        mode: Mode,
    ) -> io::Result<()> {
        let mut events = sys::EPOLLRDHUP;
        if interest.readable() {
            events |= sys::EPOLLIN;
        }
        if interest.writable() {
            events |= sys::EPOLLOUT;
        }
        if matches!(mode, Mode::Edge) {
            events |= sys::EPOLLET;
        }
        sys::sys_epoll_ctl(self.epfd, op, fd, events, token.0)
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: sys::c_int) -> io::Result<WaitOutcome> {
        let n = loop {
            match sys::sys_epoll_wait(self.epfd, &mut self.buf, timeout_ms) {
                Ok(n) => break n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        };
        let mut outcome = WaitOutcome::default();
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let (bits, data) = (ev.events, ev.data);
            if data == WAKE_DATA {
                drain_wake_fd(self.wake_fd);
                self.wake.armed.store(false, Ordering::Release);
                outcome.woken = true;
                continue;
            }
            out.push(Event {
                token: Token(data),
                readable: bits & (sys::EPOLLIN | sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR)
                    != 0,
                writable: bits & (sys::EPOLLOUT | sys::EPOLLHUP | sys::EPOLLERR) != 0,
                hangup: bits & (sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0,
                timer: false,
            });
            outcome.events += 1;
        }
        if n == self.buf.len() {
            // A full buffer means more may be pending; grow so a busy
            // loop converges to one wait per batch.
            self.buf
                .resize(self.buf.len() * 2, sys::epoll_event { events: 0, data: 0 });
        }
        Ok(outcome)
    }
}

#[cfg(any(target_os = "linux", target_os = "android"))]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        sys::sys_close(self.wake_fd);
        sys::sys_close(self.epfd);
    }
}

// ----------------------------------------------------------------- poll

struct PollReg {
    fd: sys::Fd,
    token: Token,
    interest: Interest,
}

/// Portable fallback: rebuilds the `pollfd` array every wait from the
/// registration table. O(registrations) per wait, which is fine for
/// the fallback role (CI hosts without epoll, macOS dev machines).
pub(crate) struct PollPoller {
    regs: Vec<PollReg>,
    /// Pipe read end, drained internally.
    wake_rx: sys::Fd,
    wake: Arc<WakeShared>,
    fds: Vec<sys::pollfd>,
}

impl PollPoller {
    fn new() -> io::Result<PollPoller> {
        let (rx, tx) = sys::sys_pipe_nonblocking()?;
        Ok(PollPoller {
            regs: Vec::new(),
            wake_rx: rx,
            wake: Arc::new(WakeShared {
                write_fd: tx,
                armed: AtomicBool::new(false),
                owns_write_fd: true,
            }),
            fds: Vec::new(),
        })
    }

    fn register(&mut self, fd: sys::Fd, token: Token, interest: Interest) -> io::Result<()> {
        match self.regs.iter_mut().find(|r| r.fd == fd) {
            Some(r) => {
                r.token = token;
                r.interest = interest;
            }
            None => self.regs.push(PollReg {
                fd,
                token,
                interest,
            }),
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<Event>, timeout_ms: sys::c_int) -> io::Result<WaitOutcome> {
        self.fds.clear();
        self.fds.push(sys::pollfd {
            fd: self.wake_rx,
            events: sys::POLLIN,
            revents: 0,
        });
        for r in &self.regs {
            let mut events = 0i16;
            if r.interest.readable() {
                events |= sys::POLLIN;
            }
            if r.interest.writable() {
                events |= sys::POLLOUT;
            }
            self.fds.push(sys::pollfd {
                fd: r.fd,
                events,
                revents: 0,
            });
        }
        loop {
            match sys::sys_poll(&mut self.fds, timeout_ms) {
                Ok(_) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let mut outcome = WaitOutcome::default();
        if self.fds[0].revents != 0 {
            drain_wake_fd(self.wake_rx);
            self.wake.armed.store(false, Ordering::Release);
            outcome.woken = true;
        }
        for (pfd, reg) in self.fds[1..].iter().zip(&self.regs) {
            let r = pfd.revents;
            if r == 0 {
                continue;
            }
            out.push(Event {
                token: reg.token,
                readable: r & (sys::POLLIN | sys::POLLHUP | sys::POLLERR) != 0,
                writable: r & (sys::POLLOUT | sys::POLLHUP | sys::POLLERR) != 0,
                hangup: r & (sys::POLLHUP | sys::POLLERR) != 0,
                timer: false,
            });
            outcome.events += 1;
        }
        Ok(outcome)
    }
}

impl Drop for PollPoller {
    fn drop(&mut self) {
        sys::sys_close(self.wake_rx);
    }
}
