//! Externally-signalled readiness sources.
//!
//! The in-process memory transport has no fd, so its readiness can't
//! come from the kernel. An [`ExternalHandle`] is the bridge: the
//! producer side (a pipe's notify hook) flips ready bits and wakes the
//! loop; the reactor drains signalled handles into ordinary [`Event`]s
//! after each poller wait, so callers see fd-backed and fd-less
//! sources through one event stream.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

use crate::poller::WakeShared;
use crate::Token;

const READABLE: u8 = 1;
const WRITABLE: u8 = 2;
const HANGUP: u8 = 4;

struct ExternalInner {
    token: Token,
    /// READABLE | WRITABLE | HANGUP bits, set by producers, consumed
    /// by the loop.
    ready: AtomicU8,
    /// Dedup flag: true while this handle sits in the pending list.
    queued: AtomicBool,
    pending: Arc<Mutex<Vec<Arc<ExternalInner>>>>,
    wake: Arc<WakeShared>,
}

/// Producer-side handle for one fd-less source. Clonable and cheap to
/// signal from any thread: setting an already-set bit while queued is
/// two relaxed atomics and no syscall.
#[derive(Clone)]
pub struct ExternalHandle {
    inner: Arc<ExternalInner>,
}

impl ExternalHandle {
    /// Signal readiness. Bits accumulate until the loop consumes them.
    pub fn set_ready(&self, readable: bool, writable: bool) {
        let mut bits = 0;
        if readable {
            bits |= READABLE;
        }
        if writable {
            bits |= WRITABLE;
        }
        if bits == 0 {
            return;
        }
        self.signal(bits);
    }

    /// Signal that the peer is gone (reported as `hangup` + readable so
    /// consumers observe EOF through their normal read path).
    pub fn set_hangup(&self) {
        self.signal(HANGUP | READABLE);
    }

    pub fn token(&self) -> Token {
        self.inner.token
    }

    fn signal(&self, bits: u8) {
        self.inner.ready.fetch_or(bits, Ordering::AcqRel);
        if !self.inner.queued.swap(true, Ordering::AcqRel) {
            self.inner
                .pending
                .lock()
                .unwrap()
                .push(Arc::clone(&self.inner));
            self.inner.wake.wake();
        }
    }
}

/// Loop-side registry of external sources.
pub(crate) struct Externals {
    pending: Arc<Mutex<Vec<Arc<ExternalInner>>>>,
}

impl Externals {
    pub(crate) fn new() -> Externals {
        Externals {
            pending: Arc::new(Mutex::new(Vec::new())),
        }
    }

    pub(crate) fn create(&self, token: Token, wake: Arc<WakeShared>) -> ExternalHandle {
        ExternalHandle {
            inner: Arc::new(ExternalInner {
                token,
                ready: AtomicU8::new(0),
                queued: AtomicBool::new(false),
                pending: Arc::clone(&self.pending),
                wake,
            }),
        }
    }

    /// Drain all signalled handles into `(token, readable, writable,
    /// hangup)` tuples, clearing their state for re-signalling.
    pub(crate) fn drain(&self, out: &mut Vec<(Token, bool, bool, bool)>) {
        let drained: Vec<_> = {
            let mut pending = self.pending.lock().unwrap();
            pending.drain(..).collect()
        };
        for inner in drained {
            // Clear queued before reading bits: a producer signalling
            // after this point re-queues the handle, so nothing is lost.
            inner.queued.store(false, Ordering::Release);
            let bits = inner.ready.swap(0, Ordering::AcqRel);
            if bits != 0 {
                out.push((
                    inner.token,
                    bits & READABLE != 0,
                    bits & WRITABLE != 0,
                    bits & HANGUP != 0,
                ));
            }
        }
    }
}
