//! Thin `libc`-crate-free syscall FFI.
//!
//! The workspace carries no external dependencies, so the handful of
//! readiness syscalls the reactor needs are declared here as
//! `extern "C"` bindings against the C library `std` already links on
//! every unix target. Errno is read through
//! [`std::io::Error::last_os_error`], which keeps this module free of
//! per-platform `errno` location shims.
//!
//! Everything epoll- or eventfd-specific is gated to Linux/Android;
//! the portable surface (`poll(2)`, `pipe(2)`, `fcntl(2)`,
//! `getrlimit(2)`) compiles on any unix, which is what the
//! [`poll` backend](crate::Backend::Poll) builds on for
//! macOS/CI-without-epoll.

#![allow(non_camel_case_types)]

use std::io;

pub type c_int = i32;
pub type c_uint = u32;

/// `RawFd` without pulling the whole `std::os::fd` surface into
/// every use site.
pub type Fd = c_int;

// ---------------------------------------------------------------- epoll

/// Linux `struct epoll_event`. Packed on x86 so the layout matches the
/// kernel ABI (12 bytes); naturally aligned elsewhere (16 bytes on
/// aarch64).
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

#[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
#[repr(C)]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

#[cfg(any(target_os = "linux", target_os = "android"))]
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut epoll_event, maxevents: c_int, timeout: c_int)
        -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
}

// ----------------------------------------------------------------- poll

/// Portable `struct pollfd` (identical layout on every unix).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct pollfd {
    pub fd: c_int,
    pub events: i16,
    pub revents: i16,
}

pub const POLLIN: i16 = 0x001;
pub const POLLOUT: i16 = 0x004;
pub const POLLERR: i16 = 0x008;
pub const POLLHUP: i16 = 0x010;

#[cfg(any(target_os = "linux", target_os = "android"))]
type nfds_t = u64;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
type nfds_t = c_uint;

// ------------------------------------------------------------- portable

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
const F_SETFD: c_int = 2;
const FD_CLOEXEC: c_int = 1;

#[cfg(any(target_os = "linux", target_os = "android"))]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
const O_NONBLOCK: c_int = 0x0004;

#[cfg(any(target_os = "linux", target_os = "android"))]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
const RLIMIT_NOFILE: c_int = 8;

#[repr(C)]
struct rlimit {
    rlim_cur: u64,
    rlim_max: u64,
}

extern "C" {
    fn poll(fds: *mut pollfd, nfds: nfds_t, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
    fn getrlimit(resource: c_int, rlim: *mut rlimit) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const u8,
        optlen: c_uint,
    ) -> c_int;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// -------------------------------------------------------- safe wrappers

#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn sys_epoll_create() -> io::Result<Fd> {
    // SAFETY: no pointers involved; the fd is owned by the caller.
    cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })
}

#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn sys_epoll_ctl(epfd: Fd, op: c_int, fd: Fd, events: u32, data: u64) -> io::Result<()> {
    let mut ev = epoll_event { events, data };
    // SAFETY: `ev` outlives the call; the kernel copies it.
    cvt(unsafe { epoll_ctl(epfd, op, fd, &mut ev) }).map(|_| ())
}

#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn sys_epoll_wait(
    epfd: Fd,
    events: &mut [epoll_event],
    timeout_ms: c_int,
) -> io::Result<usize> {
    // SAFETY: the buffer is valid for `events.len()` entries.
    let n =
        cvt(unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) })?;
    Ok(n as usize)
}

#[cfg(any(target_os = "linux", target_os = "android"))]
pub fn sys_eventfd() -> io::Result<Fd> {
    // SAFETY: no pointers involved.
    cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })
}

pub fn sys_poll(fds: &mut [pollfd], timeout_ms: c_int) -> io::Result<usize> {
    // SAFETY: the buffer is valid for `fds.len()` entries.
    let n = cvt(unsafe { poll(fds.as_mut_ptr(), fds.len() as nfds_t, timeout_ms) })?;
    Ok(n as usize)
}

/// A nonblocking close-on-exec pipe: `(read_end, write_end)`.
pub fn sys_pipe_nonblocking() -> io::Result<(Fd, Fd)> {
    let mut fds = [0 as c_int; 2];
    // SAFETY: `fds` is a valid 2-element buffer.
    cvt(unsafe { pipe(fds.as_mut_ptr()) })?;
    for &fd in &fds {
        if let Err(e) = set_nonblocking_cloexec(fd) {
            // SAFETY: both fds came from the pipe call above.
            unsafe {
                close(fds[0]);
                close(fds[1]);
            }
            return Err(e);
        }
    }
    Ok((fds[0], fds[1]))
}

fn set_nonblocking_cloexec(fd: Fd) -> io::Result<()> {
    // SAFETY: plain fcntl on an owned fd.
    unsafe {
        let flags = cvt(fcntl(fd, F_GETFL, 0))?;
        cvt(fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
        cvt(fcntl(fd, F_SETFD, FD_CLOEXEC))?;
    }
    Ok(())
}

/// Nonblocking read; `Ok(0)` on EOF, `WouldBlock` surfaces as `Err`.
pub fn sys_read(fd: Fd, buf: &mut [u8]) -> io::Result<usize> {
    // SAFETY: the buffer is valid for `buf.len()` bytes.
    let n = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

pub fn sys_write(fd: Fd, buf: &[u8]) -> io::Result<usize> {
    // SAFETY: the buffer is valid for `buf.len()` bytes.
    let n = unsafe { write(fd, buf.as_ptr(), buf.len()) };
    if n < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(n as usize)
    }
}

pub fn sys_close(fd: Fd) {
    // SAFETY: the reactor owns every fd it closes; double-close is
    // prevented by the owning wrappers.
    unsafe {
        close(fd);
    }
}

/// `(soft, hard)` RLIMIT_NOFILE, or `None` if the syscall failed.
pub fn fd_limit() -> Option<(u64, u64)> {
    let mut lim = rlimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid out-pointer.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } == 0 {
        Some((lim.rlim_cur, lim.rlim_max))
    } else {
        None
    }
}

/// `setsockopt(SOL_SOCKET, SO_SNDBUF, bytes)` — exposed for the
/// partial-write tests, which shrink a socket's send buffer to force
/// short writes through the connection state machine.
pub fn set_send_buffer(fd: Fd, bytes: c_int) -> io::Result<()> {
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const SOL_SOCKET: c_int = 1;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const SOL_SOCKET: c_int = 0xffff;
    #[cfg(any(target_os = "linux", target_os = "android"))]
    const SO_SNDBUF: c_int = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const SO_SNDBUF: c_int = 0x1001;
    let val = bytes.to_ne_bytes();
    // SAFETY: `val` is a valid c_int-sized buffer.
    cvt(unsafe {
        setsockopt(
            fd,
            SOL_SOCKET,
            SO_SNDBUF,
            val.as_ptr(),
            std::mem::size_of::<c_int>() as c_uint,
        )
    })
    .map(|_| ())
}
