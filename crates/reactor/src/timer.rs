//! Deadline timers: a binary heap with lazy deletion.
//!
//! Each `set_timer` bumps a per-token sequence number; heap entries
//! carry the sequence they were armed with, so stale entries (the
//! token re-armed or cancelled since) are skipped on pop instead of
//! being dug out of the heap.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::Instant;

use crate::Token;

#[derive(Default)]
pub(crate) struct Timers {
    heap: BinaryHeap<Reverse<(Instant, u64, Token)>>,
    /// token → sequence of its live arming (absent = no live timer).
    live: HashMap<u64, u64>,
    next_seq: u64,
}

impl Timers {
    /// Arm (or re-arm) the timer for `token`.
    pub(crate) fn set(&mut self, token: Token, deadline: Instant) {
        self.next_seq += 1;
        self.live.insert(token.0, self.next_seq);
        self.heap.push(Reverse((deadline, self.next_seq, token)));
    }

    pub(crate) fn cancel(&mut self, token: Token) {
        self.live.remove(&token.0);
    }

    /// Earliest live deadline, discarding stale heap entries on the way.
    pub(crate) fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse((deadline, seq, token))) = self.heap.peek().copied() {
            if self.live.get(&token.0) == Some(&seq) {
                return Some(deadline);
            }
            self.heap.pop();
        }
        None
    }

    /// Pop every live timer with `deadline <= now`.
    pub(crate) fn expired(&mut self, now: Instant, out: &mut Vec<Token>) {
        while let Some(Reverse((deadline, seq, token))) = self.heap.peek().copied() {
            if deadline > now {
                break;
            }
            self.heap.pop();
            if self.live.get(&token.0) == Some(&seq) {
                self.live.remove(&token.0);
                out.push(token);
            }
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}
