//! Influence sets (Korn & Muthukrishnan, cited in the paper's intro):
//! "the RNNs of a query point q are those objects on which q has
//! significant influence". A new store location influences exactly the
//! customers for whom it would be the nearest store — and, more
//! tolerantly, the reverse *k*-nearest neighbors: customers that would
//! have it among their k closest stores.
//!
//! This example places candidate store sites among existing stores
//! (type A) and customers (type B), and compares the influence sets at
//! k = 1, 2, 3 using the continuous RkNN monitors while customers move.
//!
//! Run with: `cargo run --example influence_sets`

use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;
use igern::mobgen::{Movement, ObjKind, Workload, WorkloadConfig};

const STORES: usize = 8; // existing stores + the candidate site (type A)
const CUSTOMERS: usize = 80; // moving customers (type B)

fn main() {
    let cfg = WorkloadConfig {
        num_objects: STORES + CUSTOMERS,
        seed: 7,
        movement: Movement::RandomWaypoint {
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            min_speed: 1.0,
            max_speed: 6.0,
        },
        kind_a_fraction: Some(STORES as f64 / (STORES + CUSTOMERS) as f64),
    };
    let mut world = Workload::from_config(&cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), 16, kinds);
    let spawn: Vec<Point> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);

    // Object 0 is the candidate site; monitor its influence at three
    // tolerance levels simultaneously.
    let mut processor = Processor::new(store);
    let site = ObjectId(0);
    let queries: Vec<(usize, usize)> = (1..=3)
        .map(|k| (k, processor.add_query(site, Algorithm::IgernBiK(k))))
        .collect();
    processor.evaluate_all();

    for tick in 0..5 {
        if tick > 0 {
            let ups: Vec<(ObjectId, Point)> = world
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            processor.step(&ups);
        }
        println!("— tick {tick} —");
        let mut prev = 0;
        for &(k, q) in &queries {
            let influenced = processor.answer(q).len();
            println!(
                "  influence at k={k}: {influenced:>2} customers \
                 (monitoring {} competitor stores)",
                processor.monitored(q)
            );
            assert!(influenced >= prev, "influence sets must be monotone in k");
            prev = influenced;
        }
    }
}
