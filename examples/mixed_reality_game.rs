//! Mixed-reality game scenario (the paper's Botfighters motivation):
//! every player wants to know which other players currently have *her*
//! as their nearest target — her reverse nearest neighbors — so she can
//! dodge their shots.
//!
//! Players move along a synthetic city road network; three of them run
//! standing monochromatic IGERN queries, and the example prints the
//! threats each tick.
//!
//! Run with: `cargo run --example mixed_reality_game`

use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::grid::ObjectId;
use igern::mobgen::{Workload, WorkloadConfig};

const PLAYERS: usize = 400;
const TICKS: usize = 8;

fn main() {
    // A seeded city: players drive the synthetic road network.
    let mut world = Workload::from_config(&WorkloadConfig::network_mono(PLAYERS, 2026));
    let mut store = SpatialStore::new(world.mover().space(), 32, vec![ObjectKind::A; PLAYERS]);
    let spawn: Vec<_> = (0..PLAYERS as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);

    let mut processor = Processor::new(store);
    let heroes = [ObjectId(11), ObjectId(177), ObjectId(333)];
    let queries: Vec<usize> = heroes
        .iter()
        .map(|&h| processor.add_query(h, Algorithm::IgernMono))
        .collect();
    processor.evaluate_all();

    for tick in 0..TICKS {
        if tick > 0 {
            let ups: Vec<(ObjectId, _)> = world
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            processor.step(&ups);
        }
        println!("— tick {tick} —");
        for (&hero, &q) in heroes.iter().zip(&queries) {
            let threats = processor.answer(q);
            let pos = processor.store().position(hero).unwrap();
            match threats.len() {
                0 => println!("  player {hero} at {pos}: safe (no one targets her)"),
                n => println!(
                    "  player {hero} at {pos}: {n} player(s) locked on: {threats:?} \
                     (IGERN watches only {} candidates)",
                    processor.monitored(q)
                ),
            }
        }
    }

    // Sanity: IGERN can never report more than six monochromatic RNNs.
    for &q in &queries {
        assert!(processor.answer(q).len() <= 6);
    }
}
