//! Battlefield scenario (the paper's bichromatic motivation): each
//! medical unit (type A) continuously monitors the wounded soldiers
//! (type B) for whom *it* is the nearest medical unit — its bichromatic
//! reverse nearest neighbors — so it knows exactly which casualties it is
//! responsible for, even as everyone moves.
//!
//! Run with: `cargo run --example battlefield_medics`

use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;
use igern::mobgen::{Movement, ObjKind, Workload, WorkloadConfig};

const UNITS: usize = 6; // medical units (type A)
const WOUNDED: usize = 60; // wounded soldiers (type B)
const TICKS: usize = 6;

fn main() {
    // Open-terrain movement: random waypoints over a 1 km² battlefield.
    let cfg = WorkloadConfig {
        num_objects: UNITS + WOUNDED,
        seed: 44,
        movement: Movement::RandomWaypoint {
            space: Aabb::from_coords(0.0, 0.0, 1000.0, 1000.0),
            min_speed: 3.0,
            max_speed: 12.0,
        },
        kind_a_fraction: Some(UNITS as f64 / (UNITS + WOUNDED) as f64),
    };
    let mut world = Workload::from_config(&cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), 16, kinds);
    let spawn: Vec<Point> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);

    // Every medical unit runs its own standing bichromatic query.
    let mut processor = Processor::new(store);
    let queries: Vec<usize> = (0..UNITS as u32)
        .map(|u| processor.add_query(ObjectId(u), Algorithm::IgernBi))
        .collect();
    processor.evaluate_all();

    for tick in 0..TICKS {
        if tick > 0 {
            let ups: Vec<(ObjectId, Point)> = world
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            processor.step(&ups);
        }
        println!("— tick {tick} —");
        let mut assigned = 0;
        for (unit, &q) in queries.iter().enumerate() {
            let wounded = processor.answer(q);
            assigned += wounded.len();
            println!(
                "  medic {unit}: responsible for {:>2} casualties {:?}",
                wounded.len(),
                wounded
            );
        }
        // Every wounded soldier has exactly one nearest medic (modulo
        // exact ties), so the responsibilities partition the casualties.
        println!("  => {assigned}/{WOUNDED} casualties covered");
        assert!(assigned <= WOUNDED);
        assert!(
            assigned >= WOUNDED - 2,
            "ties aside, coverage must be total"
        );
    }
}
