//! Taxi dispatch over a road network: a taxi (type A) wants the set of
//! waiting passengers (type B) that are *closer to it than to any other
//! taxi* — its bichromatic reverse nearest neighbors. Dispatching on RNNs
//! rather than plain nearest neighbors avoids two taxis chasing the same
//! passenger.
//!
//! The example also cross-checks the continuous IGERN answer against a
//! per-tick Voronoi reconstruction — the two must agree at every tick.
//!
//! Run with: `cargo run --example taxi_dispatch`

use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::Point;
use igern::grid::ObjectId;
use igern::mobgen::{ObjKind, Workload, WorkloadConfig};

const FLEET_AND_RIDERS: usize = 500; // half taxis, half passengers
const TICKS: usize = 6;

fn main() {
    let mut world = Workload::from_config(&WorkloadConfig::network_bi(FLEET_AND_RIDERS, 99));
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), 32, kinds);
    let spawn: Vec<Point> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);

    let mut processor = Processor::new(store);
    // Three taxis run standing queries, each twice: once with continuous
    // IGERN, once with the repetitive-Voronoi baseline, as a live
    // cross-check.
    let taxis = [ObjectId(0), ObjectId(100), ObjectId(200)];
    let igern_q: Vec<usize> = taxis
        .iter()
        .map(|&t| processor.add_query(t, Algorithm::IgernBi))
        .collect();
    let voronoi_q: Vec<usize> = taxis
        .iter()
        .map(|&t| processor.add_query(t, Algorithm::VoronoiRepeat))
        .collect();
    processor.evaluate_all();

    for tick in 0..TICKS {
        if tick > 0 {
            let ups: Vec<(ObjectId, Point)> = world
                .advance()
                .iter()
                .map(|u| (ObjectId(u.id), u.pos))
                .collect();
            processor.step(&ups);
        }
        println!("— tick {tick} —");
        for ((&taxi, &qi), &qv) in taxis.iter().zip(&igern_q).zip(&voronoi_q) {
            let igern = processor.answer(qi);
            let voronoi = processor.answer(qv);
            assert_eq!(igern, voronoi, "IGERN and Voronoi disagree for {taxi}");
            println!(
                "  taxi {taxi}: {} exclusive passenger(s) {:?}",
                igern.len(),
                igern
            );
        }
    }
    println!("IGERN and the Voronoi rebuild agreed at every tick.");
}
