//! Quickstart: continuously monitor the reverse nearest neighbors of a
//! moving query over a handful of moving objects.
//!
//! Run with: `cargo run --example quickstart`

use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;

fn main() {
    // A 100×100 space indexed by a 16×16 grid; five objects, all one type
    // (monochromatic). Object 0 doubles as the query.
    let space = Aabb::from_coords(0.0, 0.0, 100.0, 100.0);
    let mut store = SpatialStore::new(space, 16, vec![ObjectKind::A; 5]);
    store.load(&[
        Point::new(50.0, 50.0), // the query
        Point::new(40.0, 50.0),
        Point::new(65.0, 50.0),
        Point::new(50.0, 80.0),
        Point::new(10.0, 10.0),
    ]);

    let mut processor = Processor::new(store);
    let query = processor.add_query(ObjectId(0), Algorithm::IgernMono);
    processor.evaluate_all(); // the IGERN initial step

    println!("tick 0: RNNs of object 0 = {:?}", processor.answer(query));

    // Object 2 drifts toward object 1 tick by tick; the answer follows.
    for (tick, x) in [(1, 55.0), (2, 47.0), (3, 42.0)] {
        processor.step(&[(ObjectId(2), Point::new(x, 50.0))]);
        println!(
            "tick {tick}: object 2 at x={x:>4}: RNNs = {:?} (monitoring {} objects)",
            processor.answer(query),
            processor.monitored(query),
        );
    }
}
