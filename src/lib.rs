//! IGERN — facade crate re-exporting the whole workspace.
//!
//! This workspace reproduces *Continuous Evaluation of Monochromatic and
//! Bichromatic Reverse Nearest Neighbors* (Kang, Mokbel, Shekhar, Xia,
//! Zhang; ICDE 2007).
//!
//! * [`core`] — the IGERN algorithms, the CRNN / TPL / repetitive-Voronoi
//!   baselines, the continuous query processor, and the Section-6 cost model.
//! * [`engine`] — the sharded multi-worker tick engine (parallel form of
//!   the serial processor with bit-identical answers).
//! * [`grid`] — the N×N grid index and the shared nearest-neighbor search
//!   substrate (unconstrained / constrained / bounded).
//! * [`mobgen`] — Brinkhoff-style network-based moving-object generation.
//! * [`geom`] — points, bisector half-planes, convex clipping, pie sectors,
//!   Voronoi cells.
//! * [`server`] — the TCP serving layer: streaming update ingestion, query
//!   subscriptions, per-tick answer-delta push.
pub use igern_core as core;
pub use igern_engine as engine;
pub use igern_geom as geom;
pub use igern_grid as grid;
pub use igern_mobgen as mobgen;
pub use igern_server as server;
