//! Cross-crate integration tests: full workload → store → processor
//! pipelines comparing every algorithm tick-by-tick against the
//! brute-force oracles.

use igern::core::naive;
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::Point;
use igern::grid::ObjectId;
use igern::mobgen::{ObjKind, Workload, WorkloadConfig};

/// Build a loaded processor over a seeded network workload.
fn build(cfg: &WorkloadConfig, grid: usize) -> (Workload, Processor) {
    let world = Workload::from_config(cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), grid, kinds);
    let spawn: Vec<Point> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);
    (world, Processor::new(store))
}

fn advance(world: &mut Workload, proc: &mut Processor) {
    let ups: Vec<(ObjectId, Point)> = world
        .advance()
        .iter()
        .map(|u| (ObjectId(u.id), u.pos))
        .collect();
    proc.step(&ups);
}

#[test]
fn mono_algorithms_agree_with_oracle_over_a_long_run() {
    let cfg = WorkloadConfig::network_mono(600, 11);
    let (mut world, mut proc) = build(&cfg, 24);
    let queries = [ObjectId(0), ObjectId(250), ObjectId(599)];
    let mut handles = Vec::new();
    for &q in &queries {
        handles.push((q, proc.add_query(q, Algorithm::IgernMono)));
        handles.push((q, proc.add_query(q, Algorithm::Crnn)));
        handles.push((q, proc.add_query(q, Algorithm::TplRepeat)));
    }
    proc.evaluate_all();
    for tick in 0..25 {
        if tick > 0 {
            advance(&mut world, &mut proc);
        }
        let objs: Vec<(ObjectId, Point)> = proc.store().all().iter().collect();
        for &(q, h) in &handles {
            let qpos = proc.store().position(q).unwrap();
            let want = naive::mono_rnn(&objs, qpos, Some(q));
            assert_eq!(proc.answer(h), want.as_slice(), "tick {tick} query {q}");
        }
    }
}

#[test]
fn bi_algorithms_agree_with_oracle_over_a_long_run() {
    let cfg = WorkloadConfig::network_bi(500, 23);
    let (mut world, mut proc) = build(&cfg, 24);
    let queries = [ObjectId(0), ObjectId(120), ObjectId(249)];
    let mut handles = Vec::new();
    for &q in &queries {
        handles.push((q, proc.add_query(q, Algorithm::IgernBi)));
        handles.push((q, proc.add_query(q, Algorithm::VoronoiRepeat)));
    }
    proc.evaluate_all();
    for tick in 0..25 {
        if tick > 0 {
            advance(&mut world, &mut proc);
        }
        let a: Vec<(ObjectId, Point)> = proc.store().grid_a().iter().collect();
        let b: Vec<(ObjectId, Point)> = proc.store().grid_b().iter().collect();
        for &(q, h) in &handles {
            let qpos = proc.store().position(q).unwrap();
            let want = naive::bi_rnn(&a, &b, qpos, Some(q));
            assert_eq!(proc.answer(h), want.as_slice(), "tick {tick} query {q}");
        }
    }
}

#[test]
fn answers_are_invariant_to_grid_size() {
    // The grid is an index, not part of the semantics: any grid size must
    // give identical answers on an identical stream.
    let mut answers_by_grid = Vec::new();
    for grid in [4usize, 16, 48] {
        let cfg = WorkloadConfig::network_mono(300, 5);
        let (mut world, mut proc) = build(&cfg, grid);
        let h = proc.add_query(ObjectId(42), Algorithm::IgernMono);
        proc.evaluate_all();
        let mut per_tick = vec![proc.answer(h).to_vec()];
        for _ in 0..10 {
            advance(&mut world, &mut proc);
            per_tick.push(proc.answer(h).to_vec());
        }
        answers_by_grid.push(per_tick);
    }
    assert_eq!(answers_by_grid[0], answers_by_grid[1]);
    assert_eq!(answers_by_grid[1], answers_by_grid[2]);
}

#[test]
fn mono_answer_never_exceeds_six() {
    let cfg = WorkloadConfig::network_mono(800, 31);
    let (mut world, mut proc) = build(&cfg, 32);
    let hs: Vec<usize> = (0..8u32)
        .map(|i| proc.add_query(ObjectId(i * 100), Algorithm::IgernMono))
        .collect();
    proc.evaluate_all();
    for _ in 0..15 {
        advance(&mut world, &mut proc);
        for &h in &hs {
            assert!(proc.answer(h).len() <= 6, "six-RNN theorem violated");
            assert!(
                proc.monitored(h) <= 6,
                "exact-mode candidate bound violated"
            );
        }
    }
}

#[test]
fn teleporting_objects_are_handled() {
    // Failure injection: an object teleports across the space each tick —
    // the incremental step must stay exact.
    let cfg = WorkloadConfig::network_mono(200, 77);
    let (mut world, mut proc) = build(&cfg, 16);
    let h = proc.add_query(ObjectId(10), Algorithm::IgernMono);
    proc.evaluate_all();
    let space = *proc.store().space();
    for tick in 0..12 {
        let mut ups: Vec<(ObjectId, Point)> = world
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        // Teleport object 199 to a pseudo-random corner-ish location.
        let t = tick as f64;
        let tp = Point::new(
            space.min.x + (t * 137.0) % space.width(),
            space.min.y + (t * 311.0) % space.height(),
        );
        ups.push((ObjectId(199), tp));
        proc.step(&ups);
        let objs: Vec<(ObjectId, Point)> = proc.store().all().iter().collect();
        let qpos = proc.store().position(ObjectId(10)).unwrap();
        let want = naive::mono_rnn(&objs, qpos, Some(ObjectId(10)));
        assert_eq!(proc.answer(h), want.as_slice(), "tick {tick}");
    }
}

#[test]
fn quiescent_stream_is_cheap_and_stable() {
    // No object moves: after the initial step the answers must not change,
    // and the incremental steps must do almost no search work.
    let cfg = WorkloadConfig::network_mono(400, 9);
    let (_world, mut proc) = build(&cfg, 24);
    let h = proc.add_query(ObjectId(7), Algorithm::IgernMono);
    proc.evaluate_all();
    let first = proc.answer(h).to_vec();
    for _ in 0..10 {
        proc.step(&[]); // empty tick
        assert_eq!(proc.answer(h), first.as_slice());
    }
    // The initial sample dominates the total object visits.
    let hist = proc.history(h);
    let initial_visits = hist[0].ops.objects_visited;
    let later_max = hist
        .iter()
        .skip(1)
        .map(|s| s.ops.objects_visited)
        .max()
        .unwrap();
    assert!(
        later_max <= initial_visits,
        "quiescent ticks ({later_max}) must not out-work the initial step ({initial_visits})"
    );
}

#[test]
fn duplicate_positions_do_not_break_exactness() {
    // Several objects stacked on the same point (distance ties everywhere).
    let kinds = vec![ObjectKind::A; 6];
    let space = igern::geom::Aabb::from_coords(0.0, 0.0, 10.0, 10.0);
    let mut store = SpatialStore::new(space, 8, kinds);
    store.load(&[
        Point::new(5.0, 5.0), // query
        Point::new(4.0, 5.0),
        Point::new(4.0, 5.0), // duplicate of object 1
        Point::new(4.0, 5.0), // another duplicate
        Point::new(8.0, 8.0),
        Point::new(1.0, 1.0),
    ]);
    let mut proc = Processor::new(store);
    let hi = proc.add_query(ObjectId(0), Algorithm::IgernMono);
    let hc = proc.add_query(ObjectId(0), Algorithm::Crnn);
    proc.evaluate_all();
    let objs: Vec<(ObjectId, Point)> = proc.store().all().iter().collect();
    let want = naive::mono_rnn(&objs, Point::new(5.0, 5.0), Some(ObjectId(0)));
    assert_eq!(proc.answer(hi), want.as_slice());
    assert_eq!(proc.answer(hc), want.as_slice());
}

#[test]
fn random_waypoint_movement_also_exact() {
    // Ablation A4's movement model goes through the same exactness check.
    let cfg = WorkloadConfig {
        num_objects: 300,
        seed: 3,
        movement: igern::mobgen::Movement::RandomWaypoint {
            space: igern::geom::Aabb::from_coords(0.0, 0.0, 500.0, 500.0),
            min_speed: 2.0,
            max_speed: 10.0,
        },
        kind_a_fraction: Some(0.5),
    };
    let (mut world, mut proc) = build(&cfg, 16);
    let hm = proc.add_query(ObjectId(3), Algorithm::IgernMono);
    let hb = proc.add_query(ObjectId(3), Algorithm::IgernBi);
    proc.evaluate_all();
    for tick in 0..15 {
        advance(&mut world, &mut proc);
        let qpos = proc.store().position(ObjectId(3)).unwrap();
        let objs: Vec<(ObjectId, Point)> = proc.store().all().iter().collect();
        let a: Vec<(ObjectId, Point)> = proc.store().grid_a().iter().collect();
        let b: Vec<(ObjectId, Point)> = proc.store().grid_b().iter().collect();
        assert_eq!(
            proc.answer(hm),
            naive::mono_rnn(&objs, qpos, Some(ObjectId(3))).as_slice(),
            "mono tick {tick}"
        );
        assert_eq!(
            proc.answer(hb),
            naive::bi_rnn(&a, &b, qpos, Some(ObjectId(3))).as_slice(),
            "bi tick {tick}"
        );
    }
}
