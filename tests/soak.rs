//! Soak test: a mixed fleet of every algorithm over a long shared stream
//! with dynamic population churn, verified against the oracles at
//! checkpoints. Exercises the cross-product of features that unit tests
//! cover in isolation.

use igern::core::naive;
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::Point;
use igern::grid::ObjectId;
use igern::mobgen::{ObjKind, Workload, WorkloadConfig};

#[test]
fn mixed_fleet_long_run_with_churn() {
    let cfg = WorkloadConfig::network_bi(400, 2026);
    let mut world = Workload::from_config(&cfg);
    let kinds: Vec<ObjectKind> = world
        .kinds()
        .iter()
        .map(|k| match k {
            ObjKind::A => ObjectKind::A,
            ObjKind::B => ObjectKind::B,
        })
        .collect();
    let mut store = SpatialStore::new(world.mover().space(), 24, kinds);
    let spawn: Vec<Point> = (0..world.len() as u32)
        .map(|i| world.mover().position(i))
        .collect();
    store.load(&spawn);
    let mut proc = Processor::new(store);

    // One of everything, anchored on A-objects.
    let anchors = [ObjectId(0), ObjectId(50), ObjectId(100), ObjectId(150)];
    let algos = [
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::TplRepeat,
        Algorithm::IgernBi,
        Algorithm::VoronoiRepeat,
        Algorithm::IgernMonoK(3),
        Algorithm::IgernBiK(2),
        Algorithm::Knn(5),
    ];
    let mut handles = Vec::new();
    for (i, &algo) in algos.iter().enumerate() {
        let anchor = anchors[i % anchors.len()];
        handles.push((anchor, algo, proc.add_query(anchor, algo)));
    }
    proc.evaluate_all();

    // Extra objects that appear and disappear over the run.
    let mut ghost_alive = false;
    for tick in 1..=60 {
        let ups: Vec<(ObjectId, Point)> = world
            .advance()
            .iter()
            .map(|u| (ObjectId(u.id), u.pos))
            .collect();
        // Population churn every 7 ticks: a kind-A ghost object near the
        // first anchor flickers in and out.
        if tick % 7 == 0 {
            if ghost_alive {
                proc.remove_object(ObjectId(9_000));
            } else {
                let near = proc.store().position(anchors[0]).unwrap();
                proc.insert_object(
                    ObjectId(9_000),
                    ObjectKind::A,
                    Point::new(near.x + 3.0, near.y),
                );
            }
            ghost_alive = !ghost_alive;
        }
        proc.step(&ups);

        // Checkpoint every 10 ticks: every query must match its oracle.
        if tick % 10 != 0 {
            continue;
        }
        let objs: Vec<(ObjectId, Point)> = proc.store().all().iter().collect();
        let a: Vec<(ObjectId, Point)> = proc.store().grid_a().iter().collect();
        let b: Vec<(ObjectId, Point)> = proc.store().grid_b().iter().collect();
        for &(anchor, algo, h) in &handles {
            let qpos = proc.store().position(anchor).unwrap();
            match algo {
                Algorithm::IgernMono | Algorithm::Crnn | Algorithm::TplRepeat => {
                    let want = naive::mono_rnn(&objs, qpos, Some(anchor));
                    assert_eq!(proc.answer(h), want.as_slice(), "{algo:?} tick {tick}");
                }
                Algorithm::IgernBi | Algorithm::VoronoiRepeat => {
                    let want = naive::bi_rnn(&a, &b, qpos, Some(anchor));
                    assert_eq!(proc.answer(h), want.as_slice(), "{algo:?} tick {tick}");
                }
                Algorithm::IgernMonoK(k) => {
                    let want = naive::mono_rknn(&objs, qpos, Some(anchor), k);
                    assert_eq!(proc.answer(h), want.as_slice(), "{algo:?} tick {tick}");
                }
                Algorithm::IgernBiK(k) => {
                    let want = naive::bi_rknn(&a, &b, qpos, Some(anchor), k);
                    assert_eq!(proc.answer(h), want.as_slice(), "{algo:?} tick {tick}");
                }
                Algorithm::Knn(k) => {
                    // Oracle: the k smallest distances, ids sorted.
                    let mut all: Vec<(f64, ObjectId)> = objs
                        .iter()
                        .filter(|&&(id, _)| id != anchor)
                        .map(|&(id, p)| (qpos.dist_sq(p), id))
                        .collect();
                    all.sort_by(|x, y| x.0.total_cmp(&y.0));
                    let mut want: Vec<ObjectId> =
                        all.into_iter().take(k).map(|(_, id)| id).collect();
                    want.sort_unstable();
                    assert_eq!(proc.answer(h), want.as_slice(), "{algo:?} tick {tick}");
                }
            }
        }
    }
}
