//! End-to-end checks of the `igern-sim` fault-injection harness: a
//! healthy build must survive a fully faulted run on every backend,
//! runs must be bit-deterministic, and an injected defect must be
//! caught, shrunk to a handful of events, and reproducible from the
//! written `.simreplay` file.

use igern_sim::{execute, load_replay, minimize, run, write_replay, Corruption, SimConfig};

fn small(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        ticks: 60,
        objects: 32,
        queries: 8,
        ..SimConfig::default()
    }
}

#[test]
fn seeded_runs_are_bit_deterministic() {
    let cfg = small(5);
    let a = run(&cfg).expect("healthy build");
    let b = run(&cfg).expect("healthy build");
    assert_eq!(a.digest, b.digest, "answer digests diverged");
    assert_eq!(a.counters, b.counters, "counters diverged");
    assert_ne!(
        a.digest,
        run(&small(6)).expect("healthy build").digest,
        "different seeds should explore different schedules"
    );
}

#[test]
fn faulted_300_tick_run_stays_oracle_equal_on_all_backends() {
    // The acceptance run: all eight algorithms in rotation, 1-worker
    // serial vs 4-worker sharded vs the served wire protocol, faults
    // on (desyncs, stalls, frame corruption, storms), every tick
    // checked against the brute-force oracles.
    let cfg = SimConfig {
        seed: 1,
        ticks: 300,
        objects: 48,
        queries: 8,
        workers: 4,
        faults: true,
        server: true,
        ..SimConfig::default()
    };
    let report = run(&cfg).unwrap_or_else(|f| panic!("sim failed: {f}"));
    assert_eq!(report.ticks, 300);
    let c = &report.counters;
    assert!(c.desyncs > 0, "fault plan injected no desyncs");
    assert!(c.frame_faults > 0, "fault plan injected no frame faults");
    assert!(c.worker_stalls > 0, "fault plan injected no worker stalls");
    assert!(c.answer_checks > 1000, "only {} checks", c.answer_checks);
    assert!(c.queries_added >= 8);
}

#[test]
fn injected_defect_is_caught_shrunk_and_replayable() {
    // Simulate a broken build via the corruption seam: the serial
    // backend reports a wrong answer for query 0 at tick 30.
    let cfg = SimConfig {
        seed: 9,
        ticks: 40,
        objects: 24,
        queries: 4,
        server: false, // offline-only keeps the shrink loop fast
        ..SimConfig::default()
    };
    let corruption = Corruption { tick: 30, query: 0 };
    let plan = cfg.plan();
    let failure = execute(&plan, Some(&corruption)).expect_err("the corrupted run must fail");
    assert_eq!(failure.tick, 30);
    assert_eq!(failure.query, Some(0));
    assert_eq!(failure.kind, "mismatch");

    let (minimized, min_failure, stats) =
        minimize(&plan, &failure, 600, |p| execute(p, Some(&corruption)));
    assert!(
        minimized.events.len() <= 25,
        "shrunk to {} events (wanted <= 25) from {}",
        minimized.events.len(),
        stats.from_events
    );
    assert!(minimized.events.len() < plan.events.len());
    assert_eq!(min_failure.kind, "mismatch");
    assert!(minimized.ticks <= 30);

    // The written replay is self-contained: load it back and the same
    // defect reproduces at the same tick.
    let text = write_replay(&minimized);
    let reloaded = load_replay(&text).expect("own replay file loads");
    assert_eq!(reloaded, minimized);
    let replayed =
        execute(&reloaded, Some(&corruption)).expect_err("replayed plan must still fail");
    assert_eq!(replayed.tick, min_failure.tick);
}

#[test]
fn replay_of_a_healthy_plan_matches_the_original_run() {
    let cfg = SimConfig {
        seed: 12,
        ticks: 25,
        objects: 20,
        queries: 6,
        server: false,
        ..SimConfig::default()
    };
    let plan = cfg.plan();
    let direct = execute(&plan, None).expect("healthy");
    let reloaded = load_replay(&write_replay(&plan)).expect("round trip");
    let replayed = execute(&reloaded, None).expect("healthy replay");
    assert_eq!(direct.digest, replayed.digest);
    assert_eq!(direct.counters, replayed.counters);
}
