//! Dirty-region update routing: a processor with skip routing enabled
//! must produce exactly the answers of a force-evaluating processor over
//! the same update stream — for every algorithm, under movement, dynamic
//! insertion, and removal — while actually skipping work when updates
//! stay away from the watched cells.

mod common;

use common::Lcg;
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;

const SIDE: f64 = 100.0;

fn space() -> Aabb {
    Aabb::from_coords(0.0, 0.0, SIDE, SIDE)
}

/// A store with `n_a` kind-A objects followed by `n_b` kind-B objects.
fn loaded_store(rng: &mut Lcg, n_a: usize, n_b: usize, grid_n: usize) -> SpatialStore {
    let mut kinds = vec![ObjectKind::A; n_a];
    kinds.extend(vec![ObjectKind::B; n_b]);
    let mut store = SpatialStore::new(space(), grid_n, kinds);
    let pts = rng.points(n_a + n_b, SIDE);
    store.load(&pts);
    store
}

/// Every algorithm, same random stream with mid-stream object insertion
/// and removal: routed answers must equal force-evaluated answers on
/// every one of 220 ticks.
#[test]
fn routed_answers_equal_forced_answers_for_all_algorithms() {
    let mut rng = Lcg::new(0x0d12_7e57);
    run_equivalence_stream(&mut rng);
}

fn run_equivalence_stream(rng: &mut Lcg) {
    const N_A: usize = 40;
    const N_B: usize = 40;
    const TICKS: usize = 220;

    let algos = [
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::TplRepeat,
        Algorithm::IgernBi,
        Algorithm::VoronoiRepeat,
        Algorithm::IgernMonoK(2),
        Algorithm::IgernBiK(2),
        Algorithm::Knn(3),
    ];
    let mk = |rng: &mut Lcg, routing: bool| {
        let mut p = Processor::new(loaded_store(rng, N_A, N_B, 16));
        p.set_skip_routing(routing);
        // Anchors are kind-A objects (required by the bichromatic ones).
        for (i, &algo) in algos.iter().enumerate() {
            p.add_query(ObjectId(i as u32 * 3), algo);
        }
        p.evaluate_all();
        p
    };
    // Both processors must see the same initial positions: clone the
    // stream by re-seeding.
    let seed = rng.next_u64();
    let mut routed = mk(&mut Lcg::new(seed), true);
    let mut forced = mk(&mut Lcg::new(seed), false);

    let mut next_id = (N_A + N_B) as u32;
    let mut dynamic: Vec<ObjectId> = Vec::new();
    for tick in 0..TICKS {
        // Movement: most ticks only a far-corner clique moves, so the
        // routed processor has real opportunities to skip.
        let mut ups: Vec<(ObjectId, Point)> = Vec::new();
        let global = rng.bool(0.3);
        let n_moves = 1 + rng.usize(8);
        for _ in 0..n_moves {
            let id = ObjectId(rng.usize(N_A + N_B) as u32);
            if routed.store().position(id).is_none() {
                continue;
            }
            let p = if global {
                rng.point(SIDE)
            } else {
                // Localized jitter in the upper-right corner.
                Point::new(rng.range_f64(85.0, 100.0), rng.range_f64(85.0, 100.0))
            };
            ups.push((id, p));
        }
        // Dynamic population: occasionally insert a fresh object or
        // remove one inserted earlier (never a query anchor).
        if rng.bool(0.15) {
            let kind = if rng.bool(0.5) {
                ObjectKind::A
            } else {
                ObjectKind::B
            };
            let pos = rng.point(SIDE);
            routed.insert_object(ObjectId(next_id), kind, pos);
            forced.insert_object(ObjectId(next_id), kind, pos);
            dynamic.push(ObjectId(next_id));
            next_id += 1;
        }
        if !dynamic.is_empty() && rng.bool(0.1) {
            let id = dynamic.swap_remove(rng.usize(dynamic.len()));
            routed.remove_object(id);
            forced.remove_object(id);
        }
        routed.step(&ups);
        forced.step(&ups);
        for (qi, algo) in algos.iter().enumerate() {
            assert_eq!(
                routed.answer(qi),
                forced.answer(qi),
                "algorithm {algo:?} diverged at tick {tick}"
            );
        }
    }
    // Sanity: the routed processor did skip something over 220 ticks of
    // mostly-localized updates.
    let skipped: usize = (0..algos.len())
        .map(|qi| routed.history(qi).iter().filter(|s| s.skipped).count())
        .sum();
    assert!(skipped > 0, "routing never skipped a single query-tick");
    let forced_skips: usize = (0..algos.len())
        .map(|qi| forced.history(qi).iter().filter(|s| s.skipped).count())
        .sum();
    assert_eq!(forced_skips, 0, "forced processor must never skip");
}

/// The acceptance workload: 64 queries spread over the space, updates
/// confined to one grid corner. The majority of query-ticks must be
/// skipped, and every answer must equal the force-evaluate oracle.
#[test]
fn corner_updates_skip_the_majority_of_query_ticks() {
    const N_QUERIES: usize = 64;
    const N_FILLER: usize = 336;
    const N_MOVERS: usize = 40;
    const TICKS: usize = 40;
    const CORNER: f64 = 10.0;

    let mut rng = Lcg::new(0xc02e_5eed);
    // Anchors on an 8×8 lattice, fillers uniform, movers in the corner.
    let mut pts: Vec<Point> = Vec::new();
    for iy in 0..8 {
        for ix in 0..8 {
            pts.push(Point::new(ix as f64 * 12.5 + 6.25, iy as f64 * 12.5 + 6.25));
        }
    }
    pts.extend(rng.points(N_FILLER, SIDE));
    for _ in 0..N_MOVERS {
        pts.push(rng.point(CORNER));
    }
    let n = pts.len();
    let mk = |routing: bool| {
        let mut store = SpatialStore::new(space(), 16, vec![ObjectKind::A; n]);
        store.load(&pts);
        let mut p = Processor::new(store);
        p.set_skip_routing(routing);
        for i in 0..N_QUERIES {
            p.add_query(ObjectId(i as u32), Algorithm::IgernMono);
        }
        p.evaluate_all();
        p
    };
    let mut routed = mk(true);
    let mut forced = mk(false);

    let first_mover = (N_QUERIES + N_FILLER) as u32;
    for tick in 0..TICKS {
        let mut ups: Vec<(ObjectId, Point)> = Vec::new();
        for m in 0..N_MOVERS {
            if rng.bool(0.6) {
                // Movers jitter but never leave the corner.
                ups.push((ObjectId(first_mover + m as u32), rng.point(CORNER)));
            }
        }
        routed.step(&ups);
        forced.step(&ups);
        for qi in 0..N_QUERIES {
            assert_eq!(
                routed.answer(qi),
                forced.answer(qi),
                "query {qi} diverged at tick {tick}"
            );
        }
    }

    let mut skipped = 0usize;
    let mut evaluated = 0usize;
    for qi in 0..N_QUERIES {
        // Skip the initial evaluation sample (tick 0, never skippable).
        for s in routed.history(qi).iter().skip(1) {
            if s.skipped {
                skipped += 1;
            } else {
                evaluated += 1;
            }
        }
    }
    assert_eq!(skipped + evaluated, N_QUERIES * TICKS);
    assert!(
        skipped > evaluated,
        "expected the majority of query-ticks skipped, got {skipped} skipped \
         vs {evaluated} evaluated"
    );
}
