//! Shared-scan batch evaluation equivalence (see `igern_core::batch`).
//!
//! With batching on, every backend must reproduce the per-query path
//! bit-for-bit: same answers, same monitored counts, same per-tick skip
//! decisions, and the same machine-independent op counters — for all
//! eight algorithm families with k ∈ {1, 2, 4}, across mid-stream query
//! add/remove, at worker counts 1, 2, and 4 under both placement
//! policies. Query anchors are deliberately clustered into one grid
//! cell so multi-member batch groups actually form; the pipeline
//! metrics assert that they did.

mod common;

use common::Lcg;
use igern::core::obs::{MetricsRegistry, PipelineMetrics};
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::engine::{Placement, ShardedEngine};
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;

const SIDE: f64 = 100.0;
const N_A: usize = 36;
const N_B: usize = 36;
const TICKS: usize = 80;
/// Kind-A objects serving as query anchors, clustered into one cell.
const ANCHORS: usize = 12;

/// A store with `N_A` kind-A objects followed by `N_B` kind-B objects.
/// The first [`ANCHORS`] kind-A objects (the query anchors) are packed
/// into a single 16×16 grid cell so same-cell batch groups form.
fn loaded_store(seed: u64) -> SpatialStore {
    let mut kinds = vec![ObjectKind::A; N_A];
    kinds.extend(vec![ObjectKind::B; N_B]);
    let mut store = SpatialStore::new(Aabb::from_coords(0.0, 0.0, SIDE, SIDE), 16, kinds);
    let mut pts = Lcg::new(seed).points(N_A + N_B, SIDE);
    for (i, p) in pts.iter_mut().enumerate().take(ANCHORS) {
        *p = Point::new(2.0 + (i % 4) as f64, 2.0 + (i / 4) as f64);
    }
    store.load(&pts);
    store
}

/// All eight algorithm families; the k-parameterised ones sweep
/// k ∈ {1, 2, 4}.
fn variants() -> Vec<Algorithm> {
    let mut v = vec![
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::TplRepeat,
        Algorithm::IgernBi,
        Algorithm::VoronoiRepeat,
    ];
    for k in [1, 2, 4] {
        v.push(Algorithm::IgernMonoK(k));
        v.push(Algorithm::IgernBiK(k));
        v.push(Algorithm::Knn(k));
    }
    v
}

/// The batched backends driven in lockstep against the reference.
struct Batched {
    name: String,
    serial: Option<Processor>,
    engine: Option<ShardedEngine>,
}

impl Batched {
    fn add_query(&mut self, obj: ObjectId, algo: Algorithm) -> usize {
        match (&mut self.serial, &mut self.engine) {
            (Some(p), _) => p.add_query(obj, algo),
            (_, Some(e)) => e.add_query(obj, algo).expect("valid query"),
            _ => unreachable!(),
        }
    }

    fn remove_query(&mut self, q: usize) {
        match (&mut self.serial, &mut self.engine) {
            (Some(p), _) => p.remove_query(q),
            (_, Some(e)) => e.remove_query(q),
            _ => unreachable!(),
        }
    }

    fn step(&mut self, ups: &[(ObjectId, Point)]) {
        match (&mut self.serial, &mut self.engine) {
            (Some(p), _) => p.step(ups),
            (_, Some(e)) => e.step(ups),
            _ => unreachable!(),
        }
    }

    fn evaluate_all(&mut self) {
        match (&mut self.serial, &mut self.engine) {
            (Some(p), _) => p.evaluate_all(),
            (_, Some(e)) => e.evaluate_all(),
            _ => unreachable!(),
        }
    }

    /// Compare query `q` at tick `tick` against the reference sample.
    fn check(&self, reference: &Processor, q: usize, tick: usize) {
        let (answer, monitored, sample) = match (&self.serial, &self.engine) {
            (Some(p), _) => (p.answer(q), p.monitored(q), *p.history(q).latest().unwrap()),
            (_, Some(e)) => (e.answer(q), e.monitored(q), *e.history(q).latest().unwrap()),
            _ => unreachable!(),
        };
        let name = &self.name;
        let r = reference.history(q).latest().unwrap();
        assert_eq!(
            reference.answer(q),
            answer,
            "answer diverged: query {q} tick {tick} backend {name}"
        );
        assert_eq!(reference.monitored(q), monitored);
        assert_eq!(
            r.skipped, sample.skipped,
            "skip decision diverged: query {q} tick {tick} backend {name}"
        );
        assert_eq!(
            r.ops, sample.ops,
            "op counters diverged: query {q} tick {tick} backend {name}"
        );
        assert_eq!(r.answer_size, sample.answer_size);
        assert_eq!(r.monitored, sample.monitored);
        assert_eq!(
            r.region_area.to_bits(),
            sample.region_area.to_bits(),
            "region area diverged: query {q} tick {tick} backend {name}"
        );
    }
}

/// Drive the per-query reference processor against a batched serial
/// processor and batched sharded engines (workers × placements) through
/// one randomized stream with mid-stream query churn, asserting
/// bit-identical behaviour on every live query every tick.
#[test]
fn batched_backends_match_per_query_reference() {
    let seed = 0xBA7C_4ED1_u64;
    let algos = variants();

    let mut reference = Processor::new(loaded_store(seed));

    let registry = MetricsRegistry::new();
    let metrics = PipelineMetrics::register(&registry, "batch_eq");
    let mut serial = Processor::new(loaded_store(seed));
    serial.set_batch(true);
    serial.set_metrics(Some(metrics.clone()));
    let mut backends = vec![Batched {
        name: "serial+batch".into(),
        serial: Some(serial),
        engine: None,
    }];
    for (workers, placement) in [
        (1, Placement::RoundRobin),
        (2, Placement::AnchorCell),
        (4, Placement::RoundRobin),
        (4, Placement::AnchorCell),
    ] {
        let mut e = ShardedEngine::new(loaded_store(seed), workers, placement);
        e.set_batch(true);
        backends.push(Batched {
            name: format!("engine w{workers} {placement}"),
            serial: None,
            engine: Some(e),
        });
    }

    // Two queries per variant on clustered (often shared) anchors, so
    // the four batchable IGERN monitors form multi-member groups.
    let mut live: Vec<usize> = Vec::new();
    for (i, &algo) in algos.iter().enumerate() {
        for anchor in [i % ANCHORS, (i + 1) % ANCHORS] {
            let obj = ObjectId(anchor as u32);
            let qr = reference.add_query(obj, algo);
            for b in &mut backends {
                assert_eq!(qr, b.add_query(obj, algo), "index assignment diverged");
            }
            live.push(qr);
        }
    }
    reference.evaluate_all();
    for b in &mut backends {
        b.evaluate_all();
    }

    let mut rng = Lcg::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    for tick in 0..TICKS {
        // Movement: half the moves stay inside the anchor cluster's
        // cell so shared scans see churn; the rest roam globally.
        let mut ups: Vec<(ObjectId, Point)> = Vec::new();
        for _ in 0..1 + rng.usize(8) {
            let id = ObjectId(rng.usize(N_A + N_B) as u32);
            let p = if rng.bool(0.5) {
                Point::new(rng.range_f64(0.0, 6.0), rng.range_f64(0.0, 6.0))
            } else {
                rng.point(SIDE)
            };
            ups.push((id, p));
        }
        // Mid-stream churn: drop and register standing queries.
        if live.len() > 4 && rng.bool(0.08) {
            let at = rng.usize(live.len());
            let q = live.swap_remove(at);
            reference.remove_query(q);
            for b in &mut backends {
                b.remove_query(q);
            }
        }
        if rng.bool(0.08) {
            let algo = algos[rng.usize(algos.len())];
            let obj = ObjectId(rng.usize(ANCHORS) as u32);
            let qr = reference.add_query(obj, algo);
            for b in &mut backends {
                assert_eq!(
                    qr,
                    b.add_query(obj, algo),
                    "index assignment diverged at tick {tick}"
                );
            }
            live.push(qr);
        }

        reference.step(&ups);
        for b in &mut backends {
            b.step(&ups);
            for &q in &live {
                b.check(&reference, q, tick);
            }
        }
    }

    // The stream must have exercised both the skip path and actual
    // multi-member batch groups, or the test proves nothing.
    let skipped: usize = live
        .iter()
        .map(|&q| reference.history(q).iter().filter(|s| s.skipped).count())
        .sum();
    assert!(skipped > 0, "stream never skipped — routing not exercised");
    let groups = metrics.batch_groups_total.get();
    let members = metrics.batch_members_total.get();
    assert!(groups > 0, "no multi-member batch group ever formed");
    assert!(
        members >= 2 * groups,
        "multi-member groups must contribute ≥2 members each (got {members} over {groups})"
    );
}
