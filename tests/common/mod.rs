//! Shared pseudo-random helper for the integration tests.
//!
//! A splitmix64 generator replaces the former proptest dependency so the
//! test suite builds offline; each test drives the same properties over
//! a fixed number of seeded random cases.

use igern::geom::Point;

/// Deterministic splitmix64 stream.
pub struct Lcg {
    state: u64,
}

impl Lcg {
    pub fn new(seed: u64) -> Self {
        Lcg { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Not every test binary uses every helper.
    #[allow(dead_code)]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Uniform in `[0, n)`.
    pub fn usize(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    #[allow(dead_code)]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A point uniform in the `side × side` square anchored at the origin.
    pub fn point(&mut self, side: f64) -> Point {
        Point::new(self.f64() * side, self.f64() * side)
    }

    /// `count` points uniform in the square.
    pub fn points(&mut self, count: usize, side: f64) -> Vec<Point> {
        (0..count).map(|_| self.point(side)).collect()
    }
}
