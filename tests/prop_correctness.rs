//! Property-based tests (proptest): the Theorems of Section 5, checked on
//! generated workloads against the brute-force oracles, plus the
//! geometric invariants every algorithm leans on.

use igern::core::baselines::{tpl_snapshot, voronoi_snapshot, Crnn};
use igern::core::naive;
use igern::core::prune::PruneGranularity;
use igern::core::{BiIgern, BiIgernK, MonoIgern, MonoIgernK};
use igern::geom::{Aabb, Circle, ConvexPolygon, HalfPlane, Point, VoronoiCell};
use igern::grid::{nearest, Grid, ObjectId, OpCounters};
use igern_rtree::{tpl_snapshot_rtree, RTree};
use proptest::prelude::*;

const SPACE: f64 = 100.0;

fn space() -> Aabb {
    Aabb::from_coords(0.0, 0.0, SPACE, SPACE)
}

/// A point strategy within the data space.
fn point() -> impl Strategy<Value = Point> {
    (0.0..SPACE, 0.0..SPACE).prop_map(|(x, y)| Point::new(x, y))
}

/// A population of 1..=60 points.
fn population() -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec(point(), 1..=60)
}

fn grid_of(points: &[Point], n: usize) -> Grid {
    let mut g = Grid::new(space(), n);
    for (i, &p) in points.iter().enumerate() {
        g.insert(ObjectId(i as u32), p);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorems 1–2: the monochromatic initial step is accurate and
    /// complete, at both pruning granularities.
    #[test]
    fn mono_initial_matches_oracle(points in population(), q in point(), grid_n in 2usize..24) {
        let g = grid_of(&points, grid_n);
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let mut ops = OpCounters::new();
        for gran in [PruneGranularity::Exact, PruneGranularity::Cell] {
            let m = MonoIgern::initial_with(&g, q, None, gran, &mut ops);
            prop_assert_eq!(m.rnn(), want.as_slice());
        }
    }

    /// Theorems 1–2 under movement: the incremental step stays exact
    /// across a random sequence of object and query jumps.
    #[test]
    fn mono_incremental_matches_oracle(
        points in population(),
        q0 in point(),
        moves in prop::collection::vec((0usize..60, point()), 0..40),
        q_moves in prop::collection::vec(point(), 0..8),
    ) {
        let mut g = grid_of(&points, 8);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q0, None, &mut ops);
        let mut q = q0;
        let mut q_iter = q_moves.into_iter();
        for (chunk, (idx, to)) in moves.into_iter().enumerate() {
            let id = ObjectId((idx % points.len()) as u32);
            g.update(id, to);
            if chunk % 5 == 4 {
                if let Some(nq) = q_iter.next() {
                    q = nq;
                }
            }
            m.incremental(&g, q, &mut ops);
            let objs: Vec<(ObjectId, Point)> = g.iter().collect();
            let want = naive::mono_rnn(&objs, q, None);
            prop_assert_eq!(m.rnn(), want.as_slice());
            prop_assert!(m.rnn().len() <= 6);
        }
    }

    /// CRNN and TPL agree with the oracle on arbitrary snapshots.
    #[test]
    fn crnn_and_tpl_match_oracle(points in population(), q in point()) {
        let g = grid_of(&points, 8);
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let mut ops = OpCounters::new();
        let c = Crnn::initial(&g, q, None, &mut ops);
        prop_assert_eq!(c.rnn(), want.as_slice());
        let t = tpl_snapshot(&g, q, None, &mut ops);
        prop_assert_eq!(t.rnn, want);
    }

    /// Theorems 3–4: the bichromatic initial step is accurate and
    /// complete, and agrees with the Voronoi rebuild.
    #[test]
    fn bi_initial_matches_oracle(
        a_pts in prop::collection::vec(point(), 0..30),
        b_pts in prop::collection::vec(point(), 0..40),
        q in point(),
    ) {
        let ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        let want = naive::bi_rnn(&a, &b, q, None);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        prop_assert_eq!(m.rnn(), want.as_slice());
        let v = voronoi_snapshot(&ga, &gb, q, None, &mut ops);
        prop_assert_eq!(v.rnn, want);
    }

    /// The bichromatic incremental step stays exact under movement.
    #[test]
    fn bi_incremental_matches_oracle(
        a_pts in prop::collection::vec(point(), 1..20),
        b_pts in prop::collection::vec(point(), 1..30),
        q in point(),
        moves in prop::collection::vec((any::<bool>(), 0usize..30, point()), 0..30),
    ) {
        let mut ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let mut ops = OpCounters::new();
        let mut m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        for (is_a, idx, to) in moves {
            if is_a {
                ga.update(ObjectId((idx % a_pts.len()) as u32), to);
            } else {
                gb.update(ObjectId(1000 + (idx % b_pts.len()) as u32), to);
            }
            m.incremental(&ga, &gb, q, &mut ops);
            let a: Vec<(ObjectId, Point)> = ga.iter().collect();
            let b: Vec<(ObjectId, Point)> = gb.iter().collect();
            let want = naive::bi_rnn(&a, &b, q, None);
            prop_assert_eq!(m.rnn(), want.as_slice());
        }
    }

    /// The RkNN monitors agree with the k-oracles on snapshots and under
    /// movement, for several k.
    #[test]
    fn krnn_matches_oracle(
        points in population(),
        q in point(),
        k in 1usize..6,
        moves in prop::collection::vec((0usize..60, point()), 0..15),
    ) {
        let mut g = grid_of(&points, 8);
        let mut ops = OpCounters::new();
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rknn(&objs, q, None, k);
        let mut m = MonoIgernK::initial(&g, q, None, k, &mut ops);
        prop_assert_eq!(m.rnn(), want.as_slice());
        prop_assert!(m.num_monitored() <= 6 * k);
        for (idx, to) in moves {
            g.update(ObjectId((idx % points.len()) as u32), to);
            m.incremental(&g, q, &mut ops);
            let objs: Vec<(ObjectId, Point)> = g.iter().collect();
            let want = naive::mono_rknn(&objs, q, None, k);
            prop_assert_eq!(m.rnn(), want.as_slice());
        }
    }

    /// Bichromatic RkNN agrees with the k-oracle.
    #[test]
    fn bi_krnn_matches_oracle(
        a_pts in prop::collection::vec(point(), 0..20),
        b_pts in prop::collection::vec(point(), 0..30),
        q in point(),
        k in 1usize..5,
    ) {
        let ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        let want = naive::bi_rknn(&a, &b, q, None, k);
        let mut ops = OpCounters::new();
        let m = BiIgernK::initial(&ga, &gb, q, None, k, &mut ops);
        prop_assert_eq!(m.rnn(), want.as_slice());
    }

    /// The R-tree substrate agrees with the grid on NN, and native TPL
    /// over it matches the oracle.
    #[test]
    fn rtree_agrees_with_grid_and_oracle(points in population(), q in point()) {
        let g = grid_of(&points, 8);
        let mut t = RTree::new();
        for (i, &p) in points.iter().enumerate() {
            t.insert(ObjectId(i as u32), p);
        }
        t.check_invariants();
        let mut ops = OpCounters::new();
        let via_grid = nearest(&g, q, None, &mut ops).map(|n| n.dist_sq);
        let via_tree = igern_rtree::nearest(&t, q, None, &mut ops).map(|n| n.dist_sq);
        prop_assert_eq!(via_grid, via_tree);
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let got = tpl_snapshot_rtree(&t, q, None, &mut ops);
        prop_assert_eq!(got.rnn, want);
    }

    /// Grid NN equals the linear scan on arbitrary data.
    #[test]
    fn grid_nn_matches_linear_scan(points in population(), q in point(), grid_n in 1usize..32) {
        let g = grid_of(&points, grid_n);
        let mut ops = OpCounters::new();
        let got = nearest(&g, q, None, &mut ops).map(|n| n.dist_sq);
        let want = points.iter().map(|p| q.dist_sq(*p)).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(got, Some(want));
    }

    /// Bisector membership is exactly the distance predicate.
    #[test]
    fn bisector_is_the_distance_predicate(a in point(), b in point(), p in point()) {
        prop_assume!(a.dist_sq(b) > 1e-9);
        let h = HalfPlane::bisector(a, b).unwrap();
        let closer_to_a = p.dist_sq(a) < p.dist_sq(b);
        let farther_from_a = p.dist_sq(a) > p.dist_sq(b);
        // Within tolerance of the boundary either answer is acceptable.
        if (p.dist_sq(a) - p.dist_sq(b)).abs() > 1e-6 {
            if closer_to_a {
                prop_assert!(h.contains(p));
            }
            if farther_from_a {
                prop_assert!(!h.contains(p));
            }
        }
    }

    /// Convex clipping never grows area and keeps contained points.
    #[test]
    fn clipping_shrinks_and_preserves_membership(
        sites in prop::collection::vec(point(), 0..10),
        q in point(),
        probe in point(),
    ) {
        let mut poly = ConvexPolygon::from_aabb(&space());
        let mut prev_area = poly.area();
        for s in &sites {
            if let Some(h) = HalfPlane::bisector(q, *s) {
                poly.clip(&h);
                let area = poly.area();
                prop_assert!(area <= prev_area + 1e-6, "clip grew the polygon");
                prev_area = area;
            }
        }
        // Membership: probe is in the clipped polygon iff it is on q's
        // side of every bisector (modulo boundary tolerance).
        let strictly_inside = sites.iter().all(|s| probe.dist_sq(q) + 1e-6 < probe.dist_sq(*s));
        let strictly_outside = sites.iter().any(|s| probe.dist_sq(*s) + 1e-6 < probe.dist_sq(q));
        if strictly_inside {
            prop_assert!(poly.contains(probe));
        }
        if strictly_outside && !poly.is_empty() {
            prop_assert!(!poly.contains(probe));
        }
    }

    /// The incremental Voronoi cell agrees with the nearest-site predicate.
    #[test]
    fn voronoi_cell_membership(
        sites in prop::collection::vec(point(), 1..15),
        center in point(),
        probe in point(),
    ) {
        let mut cell = VoronoiCell::new(center, &space());
        for s in &sites {
            cell.add_site(*s);
        }
        let d_c = probe.dist_sq(center);
        let d_best = sites.iter().map(|s| probe.dist_sq(*s)).fold(f64::INFINITY, f64::min);
        if (d_c - d_best).abs() > 1e-6 {
            prop_assert_eq!(cell.contains(probe), d_c < d_best);
        }
    }

    /// Circle/AABB relations are consistent with dense point sampling.
    #[test]
    fn circle_aabb_relation_consistent(c in point(), r in 0.1..30.0f64, bx in point(), w in 0.1..20.0f64, h in 0.1..20.0f64) {
        let circle = Circle::new(c, r);
        let bb = Aabb::from_coords(bx.x, bx.y, bx.x + w, bx.y + h);
        // Sample the box; any sampled point inside the circle implies
        // intersection must be reported.
        let mut any_in = false;
        for i in 0..=4 {
            for j in 0..=4 {
                let p = Point::new(
                    bb.min.x + w * i as f64 / 4.0,
                    bb.min.y + h * j as f64 / 4.0,
                );
                if circle.contains(p) {
                    any_in = true;
                }
            }
        }
        if any_in {
            prop_assert!(circle.intersects_aabb(&bb));
        }
        if circle.contains_aabb(&bb) {
            prop_assert!(circle.intersects_aabb(&bb));
            prop_assert!(circle.contains(bb.corners()[0]));
        }
    }
}
