//! Randomized property tests: the Theorems of Section 5, checked on
//! generated workloads against the brute-force oracles, plus the
//! geometric invariants every algorithm leans on. Each property runs
//! over many seeded random cases via the in-repo [`common::Lcg`].

mod common;

use common::Lcg;
use igern::core::baselines::{tpl_snapshot, voronoi_snapshot, Crnn};
use igern::core::naive;
use igern::core::prune::PruneGranularity;
use igern::core::{BiIgern, BiIgernK, MonoIgern, MonoIgernK};
use igern::geom::{Aabb, Circle, ConvexPolygon, HalfPlane, Point, VoronoiCell};
use igern::grid::{nearest, Grid, ObjectId, OpCounters};
use igern_rtree::{tpl_snapshot_rtree, RTree};

const SPACE: f64 = 100.0;
const CASES: usize = 64;

fn space() -> Aabb {
    Aabb::from_coords(0.0, 0.0, SPACE, SPACE)
}

/// A population of 1..=60 points.
fn population(rng: &mut Lcg) -> Vec<Point> {
    let n = 1 + rng.usize(60);
    rng.points(n, SPACE)
}

fn grid_of(points: &[Point], n: usize) -> Grid {
    let mut g = Grid::new(space(), n);
    for (i, &p) in points.iter().enumerate() {
        g.insert(ObjectId(i as u32), p);
    }
    g
}

/// Theorems 1–2: the monochromatic initial step is accurate and
/// complete, at both pruning granularities.
#[test]
fn mono_initial_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0001);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q = rng.point(SPACE);
        let grid_n = 2 + rng.usize(22);
        let g = grid_of(&points, grid_n);
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let mut ops = OpCounters::new();
        for gran in [PruneGranularity::Exact, PruneGranularity::Cell] {
            let m = MonoIgern::initial_with(&g, q, None, gran, &mut ops);
            assert_eq!(m.rnn(), want.as_slice(), "case {case} ({gran:?})");
        }
    }
}

/// Theorems 1–2 under movement: the incremental step stays exact
/// across a random sequence of object and query jumps.
#[test]
fn mono_incremental_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0002);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q0 = rng.point(SPACE);
        let moves: Vec<(usize, Point)> = (0..rng.usize(41))
            .map(|_| (rng.usize(60), rng.point(SPACE)))
            .collect();
        let n_q_moves = rng.usize(9);
        let q_moves = rng.points(n_q_moves, SPACE);
        let mut g = grid_of(&points, 8);
        let mut ops = OpCounters::new();
        let mut m = MonoIgern::initial(&g, q0, None, &mut ops);
        let mut q = q0;
        let mut q_iter = q_moves.into_iter();
        for (chunk, (idx, to)) in moves.into_iter().enumerate() {
            let id = ObjectId((idx % points.len()) as u32);
            g.update(id, to);
            if chunk % 5 == 4 {
                if let Some(nq) = q_iter.next() {
                    q = nq;
                }
            }
            m.incremental(&g, q, &mut ops);
            let objs: Vec<(ObjectId, Point)> = g.iter().collect();
            let want = naive::mono_rnn(&objs, q, None);
            assert_eq!(m.rnn(), want.as_slice(), "case {case}");
            assert!(m.rnn().len() <= 6, "case {case}");
        }
    }
}

/// CRNN and TPL agree with the oracle on arbitrary snapshots.
#[test]
fn crnn_and_tpl_match_oracle() {
    let mut rng = Lcg::new(0xc0de_0003);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q = rng.point(SPACE);
        let g = grid_of(&points, 8);
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let mut ops = OpCounters::new();
        let c = Crnn::initial(&g, q, None, &mut ops);
        assert_eq!(c.rnn(), want.as_slice(), "case {case}");
        let t = tpl_snapshot(&g, q, None, &mut ops);
        assert_eq!(t.rnn, want, "case {case}");
    }
}

/// Theorems 3–4: the bichromatic initial step is accurate and
/// complete, and agrees with the Voronoi rebuild.
#[test]
fn bi_initial_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0004);
    for case in 0..CASES {
        let n_a_pts = rng.usize(30);
        let a_pts = rng.points(n_a_pts, SPACE);
        let n_b_pts = rng.usize(40);
        let b_pts = rng.points(n_b_pts, SPACE);
        let q = rng.point(SPACE);
        let ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        let want = naive::bi_rnn(&a, &b, q, None);
        let mut ops = OpCounters::new();
        let m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        assert_eq!(m.rnn(), want.as_slice(), "case {case}");
        let v = voronoi_snapshot(&ga, &gb, q, None, &mut ops);
        assert_eq!(v.rnn, want, "case {case}");
    }
}

/// The bichromatic incremental step stays exact under movement.
#[test]
fn bi_incremental_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0005);
    for case in 0..CASES {
        let n_a_pts = 1 + rng.usize(19);
        let a_pts = rng.points(n_a_pts, SPACE);
        let n_b_pts = 1 + rng.usize(29);
        let b_pts = rng.points(n_b_pts, SPACE);
        let q = rng.point(SPACE);
        let moves: Vec<(bool, usize, Point)> = (0..rng.usize(31))
            .map(|_| (rng.bool(0.5), rng.usize(30), rng.point(SPACE)))
            .collect();
        let mut ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let mut ops = OpCounters::new();
        let mut m = BiIgern::initial(&ga, &gb, q, None, &mut ops);
        for (is_a, idx, to) in moves {
            if is_a {
                ga.update(ObjectId((idx % a_pts.len()) as u32), to);
            } else {
                gb.update(ObjectId(1000 + (idx % b_pts.len()) as u32), to);
            }
            m.incremental(&ga, &gb, q, &mut ops);
            let a: Vec<(ObjectId, Point)> = ga.iter().collect();
            let b: Vec<(ObjectId, Point)> = gb.iter().collect();
            let want = naive::bi_rnn(&a, &b, q, None);
            assert_eq!(m.rnn(), want.as_slice(), "case {case}");
        }
    }
}

/// The RkNN monitors agree with the k-oracles on snapshots and under
/// movement, for several k.
#[test]
fn krnn_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0006);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q = rng.point(SPACE);
        let k = 1 + rng.usize(5);
        let moves: Vec<(usize, Point)> = (0..rng.usize(16))
            .map(|_| (rng.usize(60), rng.point(SPACE)))
            .collect();
        let mut g = grid_of(&points, 8);
        let mut ops = OpCounters::new();
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rknn(&objs, q, None, k);
        let mut m = MonoIgernK::initial(&g, q, None, k, &mut ops);
        assert_eq!(m.rnn(), want.as_slice(), "case {case}");
        assert!(m.num_monitored() <= 6 * k, "case {case}");
        for (idx, to) in moves {
            g.update(ObjectId((idx % points.len()) as u32), to);
            m.incremental(&g, q, &mut ops);
            let objs: Vec<(ObjectId, Point)> = g.iter().collect();
            let want = naive::mono_rknn(&objs, q, None, k);
            assert_eq!(m.rnn(), want.as_slice(), "case {case}");
        }
    }
}

/// Bichromatic RkNN agrees with the k-oracle.
#[test]
fn bi_krnn_matches_oracle() {
    let mut rng = Lcg::new(0xc0de_0007);
    for case in 0..CASES {
        let n_a_pts = rng.usize(20);
        let a_pts = rng.points(n_a_pts, SPACE);
        let n_b_pts = rng.usize(30);
        let b_pts = rng.points(n_b_pts, SPACE);
        let q = rng.point(SPACE);
        let k = 1 + rng.usize(4);
        let ga = grid_of(&a_pts, 8);
        let mut gb = Grid::new(space(), 8);
        for (i, &p) in b_pts.iter().enumerate() {
            gb.insert(ObjectId(1000 + i as u32), p);
        }
        let a: Vec<(ObjectId, Point)> = ga.iter().collect();
        let b: Vec<(ObjectId, Point)> = gb.iter().collect();
        let want = naive::bi_rknn(&a, &b, q, None, k);
        let mut ops = OpCounters::new();
        let m = BiIgernK::initial(&ga, &gb, q, None, k, &mut ops);
        assert_eq!(m.rnn(), want.as_slice(), "case {case}");
    }
}

/// The R-tree substrate agrees with the grid on NN, and native TPL
/// over it matches the oracle.
#[test]
fn rtree_agrees_with_grid_and_oracle() {
    let mut rng = Lcg::new(0xc0de_0008);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q = rng.point(SPACE);
        let g = grid_of(&points, 8);
        let mut t = RTree::new();
        for (i, &p) in points.iter().enumerate() {
            t.insert(ObjectId(i as u32), p).unwrap();
        }
        t.check_invariants();
        let mut ops = OpCounters::new();
        let via_grid = nearest(&g, q, None, &mut ops).map(|n| n.dist_sq);
        let via_tree = igern_rtree::nearest(&t, q, None, &mut ops).map(|n| n.dist_sq);
        assert_eq!(via_grid, via_tree, "case {case}");
        let objs: Vec<(ObjectId, Point)> = g.iter().collect();
        let want = naive::mono_rnn(&objs, q, None);
        let got = tpl_snapshot_rtree(&t, q, None, &mut ops);
        assert_eq!(got.rnn, want, "case {case}");
    }
}

/// Grid NN equals the linear scan on arbitrary data.
#[test]
fn grid_nn_matches_linear_scan() {
    let mut rng = Lcg::new(0xc0de_0009);
    for case in 0..CASES {
        let points = population(&mut rng);
        let q = rng.point(SPACE);
        let grid_n = 1 + rng.usize(31);
        let g = grid_of(&points, grid_n);
        let mut ops = OpCounters::new();
        let got = nearest(&g, q, None, &mut ops).map(|n| n.dist_sq);
        let want = points
            .iter()
            .map(|p| q.dist_sq(*p))
            .fold(f64::INFINITY, f64::min);
        assert_eq!(got, Some(want), "case {case}");
    }
}

/// Bisector membership is exactly the distance predicate.
#[test]
fn bisector_is_the_distance_predicate() {
    let mut rng = Lcg::new(0xc0de_000a);
    for case in 0..CASES {
        let a = rng.point(SPACE);
        let b = rng.point(SPACE);
        let p = rng.point(SPACE);
        if a.dist_sq(b) <= 1e-9 {
            continue;
        }
        let h = HalfPlane::bisector(a, b).unwrap();
        let closer_to_a = p.dist_sq(a) < p.dist_sq(b);
        let farther_from_a = p.dist_sq(a) > p.dist_sq(b);
        // Within tolerance of the boundary either answer is acceptable.
        if (p.dist_sq(a) - p.dist_sq(b)).abs() > 1e-6 {
            if closer_to_a {
                assert!(h.contains(p), "case {case}");
            }
            if farther_from_a {
                assert!(!h.contains(p), "case {case}");
            }
        }
    }
}

/// Convex clipping never grows area and keeps contained points.
#[test]
fn clipping_shrinks_and_preserves_membership() {
    let mut rng = Lcg::new(0xc0de_000b);
    for case in 0..CASES {
        let n_sites = rng.usize(10);
        let sites = rng.points(n_sites, SPACE);
        let q = rng.point(SPACE);
        let probe = rng.point(SPACE);
        let mut poly = ConvexPolygon::from_aabb(&space());
        let mut prev_area = poly.area();
        for s in &sites {
            if let Some(h) = HalfPlane::bisector(q, *s) {
                poly.clip(&h);
                let area = poly.area();
                assert!(
                    area <= prev_area + 1e-6,
                    "case {case}: clip grew the polygon"
                );
                prev_area = area;
            }
        }
        // Membership: probe is in the clipped polygon iff it is on q's
        // side of every bisector (modulo boundary tolerance).
        let strictly_inside = sites
            .iter()
            .all(|s| probe.dist_sq(q) + 1e-6 < probe.dist_sq(*s));
        let strictly_outside = sites
            .iter()
            .any(|s| probe.dist_sq(*s) + 1e-6 < probe.dist_sq(q));
        if strictly_inside {
            assert!(poly.contains(probe), "case {case}");
        }
        if strictly_outside && !poly.is_empty() {
            assert!(!poly.contains(probe), "case {case}");
        }
    }
}

/// The incremental Voronoi cell agrees with the nearest-site predicate.
#[test]
fn voronoi_cell_membership() {
    let mut rng = Lcg::new(0xc0de_000c);
    for case in 0..CASES {
        let n_sites = 1 + rng.usize(14);
        let sites = rng.points(n_sites, SPACE);
        let center = rng.point(SPACE);
        let probe = rng.point(SPACE);
        let mut cell = VoronoiCell::new(center, &space());
        for s in &sites {
            cell.add_site(*s);
        }
        let d_c = probe.dist_sq(center);
        let d_best = sites
            .iter()
            .map(|s| probe.dist_sq(*s))
            .fold(f64::INFINITY, f64::min);
        if (d_c - d_best).abs() > 1e-6 {
            assert_eq!(cell.contains(probe), d_c < d_best, "case {case}");
        }
    }
}

/// Circle/AABB relations are consistent with dense point sampling.
#[test]
fn circle_aabb_relation_consistent() {
    let mut rng = Lcg::new(0xc0de_000d);
    for case in 0..CASES {
        let c = rng.point(SPACE);
        let r = rng.range_f64(0.1, 30.0);
        let bx = rng.point(SPACE);
        let w = rng.range_f64(0.1, 20.0);
        let h = rng.range_f64(0.1, 20.0);
        let circle = Circle::new(c, r);
        let bb = Aabb::from_coords(bx.x, bx.y, bx.x + w, bx.y + h);
        // Sample the box; any sampled point inside the circle implies
        // intersection must be reported.
        let mut any_in = false;
        for i in 0..=4 {
            for j in 0..=4 {
                let p = Point::new(bb.min.x + w * i as f64 / 4.0, bb.min.y + h * j as f64 / 4.0);
                if circle.contains(p) {
                    any_in = true;
                }
            }
        }
        if any_in {
            assert!(circle.intersects_aabb(&bb), "case {case}");
        }
        if circle.contains_aabb(&bb) {
            assert!(circle.intersects_aabb(&bb), "case {case}");
            assert!(circle.contains(bb.corners()[0]), "case {case}");
        }
    }
}
