//! Sharded engine equivalence: for any worker count and placement
//! policy, the engine must reproduce the serial processor's behaviour
//! exactly — same answers, same answer sizes, same monitored counts, and
//! the same per-tick skip decisions — over a randomized update stream
//! with mid-stream query registration and removal, across all eight
//! algorithms.
//!
//! Set `IGERN_TEST_WORKERS` to add a worker count to the sweep (the CI
//! matrix uses this to force a 4-worker leg). Set `IGERN_TEST_BATCH=on`
//! to run the whole sweep with shared-scan batch evaluation enabled on
//! both backends — batching must be answer-invisible, so every assertion
//! below holds unchanged (the CI batch leg uses this). Set
//! `IGERN_TEST_DISTANCE=network` to run the whole sweep under road-network
//! distance: both stores carry the same synthetic road graph and every
//! query registers in `DistanceMode::Network` (the CI network leg).

mod common;

use common::Lcg;
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::{DistanceMode, ObjectKind};
use igern::core::{NetworkSpace, SpatialStore};
use igern::engine::{Placement, ShardedEngine};
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;
use igern::mobgen::{build_synthetic_network, SyntheticNetworkConfig};

const SIDE: f64 = 100.0;
const N_A: usize = 36;
const N_B: usize = 36;
const TICKS: usize = 120;

/// A store with `N_A` kind-A objects followed by `N_B` kind-B objects.
/// Under the network leg both backends get the same seeded road graph.
fn loaded_store(seed: u64) -> SpatialStore {
    let mut kinds = vec![ObjectKind::A; N_A];
    kinds.extend(vec![ObjectKind::B; N_B]);
    let mut store = SpatialStore::new(Aabb::from_coords(0.0, 0.0, SIDE, SIDE), 16, kinds);
    if distance_mode() == DistanceMode::Network {
        store.set_network(std::sync::Arc::new(NetworkSpace::from_network(
            &build_synthetic_network(&SyntheticNetworkConfig {
                k: 8,
                space: Aabb::from_coords(0.0, 0.0, SIDE, SIDE),
                seed,
                ..Default::default()
            }),
        )));
    }
    let pts = Lcg::new(seed).points(N_A + N_B, SIDE);
    store.load(&pts);
    store
}

const ALGOS: [Algorithm; 8] = [
    Algorithm::IgernMono,
    Algorithm::Crnn,
    Algorithm::TplRepeat,
    Algorithm::IgernBi,
    Algorithm::VoronoiRepeat,
    Algorithm::IgernMonoK(2),
    Algorithm::IgernBiK(2),
    Algorithm::Knn(3),
];

/// Worker counts to sweep: {1, 2, 4, 8} plus whatever `IGERN_TEST_WORKERS`
/// asks for.
fn worker_counts() -> Vec<usize> {
    let mut counts = vec![1, 2, 4, 8];
    if let Ok(v) = std::env::var("IGERN_TEST_WORKERS").map(|v| v.trim().to_string()) {
        if v.is_empty() {
            return counts;
        }
        let extra: usize = v
            .parse()
            .expect("IGERN_TEST_WORKERS must be a positive integer");
        assert!(extra >= 1, "IGERN_TEST_WORKERS must be a positive integer");
        if !counts.contains(&extra) {
            counts.push(extra);
        }
    }
    counts
}

/// `IGERN_TEST_DISTANCE=network` runs the sweep under road-network
/// distance on both backends (which must still agree bit-exactly).
fn distance_mode() -> DistanceMode {
    match std::env::var("IGERN_TEST_DISTANCE")
        .as_deref()
        .map(str::trim)
    {
        Ok("network") => DistanceMode::Network,
        Ok("") | Ok("euclidean") | Err(_) => DistanceMode::Euclidean,
        Ok(other) => panic!("IGERN_TEST_DISTANCE must be euclidean|network, got {other:?}"),
    }
}

/// `IGERN_TEST_BATCH=on` switches both backends to the batched
/// shared-scan path (which must be bit-identical to per-query).
fn batch_on() -> bool {
    matches!(
        std::env::var("IGERN_TEST_BATCH").as_deref().map(str::trim),
        Ok("on") | Ok("1")
    )
}

/// Drive the serial processor and a sharded engine through the identical
/// randomized stream — movement, skip routing on, and mid-stream
/// add/remove of standing queries — asserting lock-step equality.
fn run_stream(workers: usize, placement: Placement, seed: u64) {
    let mode = distance_mode();
    let mut serial = Processor::new(loaded_store(seed));
    let mut engine = ShardedEngine::new(loaded_store(seed), workers, placement);
    if batch_on() {
        serial.set_batch(true);
        engine.set_batch(true);
    }

    // Anchors are kind-A objects (required by the bichromatic ones).
    let mut live: Vec<usize> = ALGOS
        .iter()
        .enumerate()
        .map(|(i, &algo)| {
            let obj = ObjectId(i as u32 * 3);
            let qs = serial.add_query_in(obj, algo, mode);
            let qe = engine.add_query_in(obj, algo, mode).expect("valid query");
            assert_eq!(qs, qe, "index assignment diverged on add");
            qs
        })
        .collect();
    serial.evaluate_all();
    engine.evaluate_all();

    let mut rng = Lcg::new(seed ^ 0x9e37_79b9_7f4a_7c15);
    for tick in 0..TICKS {
        // Movement: mostly a localized clique so skip routing matters.
        // Roughly one tick in ten is fully quiet — that is the only
        // skip opportunity the watch-set-free network monitors have,
        // and a cheap extra case for the Euclidean ones.
        let mut ups: Vec<(ObjectId, Point)> = Vec::new();
        if !rng.bool(0.1) {
            let global = rng.bool(0.3);
            for _ in 0..1 + rng.usize(8) {
                let id = ObjectId(rng.usize(N_A + N_B) as u32);
                let p = if global {
                    rng.point(SIDE)
                } else {
                    Point::new(rng.range_f64(85.0, 100.0), rng.range_f64(85.0, 100.0))
                };
                ups.push((id, p));
            }
        }
        // Mid-stream churn: sometimes remove a standing query, sometimes
        // register a new one (reusing the tombstoned slot on both sides).
        if live.len() > 2 && rng.bool(0.08) {
            let at = rng.usize(live.len());
            let q = live.swap_remove(at);
            serial.remove_query(q);
            engine.remove_query(q);
        }
        if rng.bool(0.08) {
            let algo = ALGOS[rng.usize(ALGOS.len())];
            let obj = ObjectId((rng.usize(N_A / 2) * 2) as u32);
            let qs = serial.add_query_in(obj, algo, mode);
            let qe = engine.add_query_in(obj, algo, mode).expect("valid query");
            assert_eq!(qs, qe, "index assignment diverged at tick {tick}");
            live.push(qs);
        }

        serial.step(&ups);
        engine.step(&ups);
        assert_eq!(serial.tick(), engine.tick());
        for &q in &live {
            assert_eq!(
                serial.answer(q),
                engine.answer(q),
                "answer diverged: query {q} tick {tick} workers {workers} {placement}"
            );
            assert_eq!(serial.monitored(q), engine.monitored(q));
            let ss = serial.history(q).latest().unwrap();
            let es = engine.history(q).latest().unwrap();
            assert_eq!(
                ss.skipped, es.skipped,
                "skip decision diverged: query {q} tick {tick} workers {workers}"
            );
            assert_eq!(ss.answer_size, es.answer_size);
            assert_eq!(ss.monitored, es.monitored);
        }
    }

    // The stream must have exercised the skip path at all worker counts.
    let skipped: usize = live
        .iter()
        .map(|&q| engine.history(q).iter().filter(|s| s.skipped).count())
        .sum();
    assert!(skipped > 0, "stream never skipped — routing not exercised");
}

#[test]
fn engine_matches_serial_across_worker_counts() {
    for workers in worker_counts() {
        run_stream(workers, Placement::RoundRobin, 0x0e17_a2b4);
    }
}

#[test]
fn engine_matches_serial_under_anchor_cell_placement() {
    for workers in [2, 4] {
        run_stream(workers, Placement::AnchorCell, 0x5ca1_ab1e);
    }
}
