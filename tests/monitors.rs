//! Integration tests for the auxiliary continuous monitors (k-NN, range)
//! and the duality invariants connecting them to the RNN monitors.

use igern::core::{KnnMonitor, MonoIgernK, RangeMonitor};

use igern::grid::{k_nearest, Grid, ObjectId, OpCounters};
use igern::mobgen::{Workload, WorkloadConfig};

/// Build a grid mirroring a workload's initial state.
fn grid_of(world: &Workload, n: usize) -> Grid {
    let mut g = Grid::new(world.mover().space(), n);
    for i in 0..world.len() as u32 {
        g.insert(ObjectId(i), world.mover().position(i));
    }
    g
}

#[test]
fn rknn_knn_duality_holds_every_tick() {
    // o ∈ RkNN(q)  ⟺  q is among o's k nearest (counting q as an object).
    let mut world = Workload::from_config(&WorkloadConfig::network_mono(250, 13));
    let mut g = grid_of(&world, 16);
    let q_id = ObjectId(0);
    let k = 3;
    let mut ops = OpCounters::new();
    let mut monitor = MonoIgernK::initial(&g, g.position(q_id).unwrap(), Some(q_id), k, &mut ops);
    for tick in 0..10 {
        if tick > 0 {
            for u in world.advance().to_vec() {
                g.update(ObjectId(u.id), u.pos);
            }
            monitor.incremental(&g, g.position(q_id).unwrap(), &mut ops);
        }
        let q_pos = g.position(q_id).unwrap();
        let answer = monitor.rnn();
        for i in 0..250u32 {
            let o = ObjectId(i);
            if o == q_id {
                continue;
            }
            let o_pos = g.position(o).unwrap();
            // q is among o's k nearest iff fewer than k other objects are
            // strictly closer to o than q is.
            let knn_of_o = k_nearest(&g, o_pos, k, Some(o), &mut ops);
            let q_in_knn = knn_of_o
                .iter()
                .any(|n| n.id == q_id)
                // Ties at the k-th distance also qualify under the strict
                // "fewer than k closer" definition.
                || knn_of_o
                    .last()
                    .is_some_and(|kth| o_pos.dist_sq(q_pos) <= kth.dist_sq)
                || knn_of_o.len() < k;
            assert_eq!(
                answer.contains(&o),
                q_in_knn,
                "duality violated for {o} at tick {tick}"
            );
        }
    }
}

#[test]
fn knn_and_range_monitors_agree_with_each_other() {
    // Consistency: every k-NN answer member within distance r must be in
    // the range answer, and the range answer restricted to the k nearest
    // is a prefix of the k-NN answer.
    let mut world = Workload::from_config(&WorkloadConfig::network_mono(300, 29));
    let mut g = grid_of(&world, 16);
    let q_id = ObjectId(5);
    let r = 60.0;
    let mut ops = OpCounters::new();
    let q0 = g.position(q_id).unwrap();
    let mut knn = KnnMonitor::initial(&g, q0, Some(q_id), 10, &mut ops);
    let mut range = RangeMonitor::initial(&g, q0, r, Some(q_id), &mut ops);
    for _ in 0..12 {
        for u in world.advance().to_vec() {
            g.update(ObjectId(u.id), u.pos);
        }
        let q = g.position(q_id).unwrap();
        knn.incremental(&g, q, &mut ops);
        range.incremental(&g, q, &mut ops);
        let in_range = range.ids();
        for n in knn.answer() {
            if n.dist() <= r {
                assert!(
                    in_range.contains(&n.id),
                    "kNN member {} at dist {} missing from range",
                    n.id,
                    n.dist()
                );
            }
        }
        // And every range member closer than the k-th neighbor must be in
        // the k-NN answer.
        if let Some(kth) = knn.answer().last() {
            for &id in &in_range {
                let d = g.position(id).unwrap().dist_sq(q);
                if d < kth.dist_sq {
                    assert!(
                        knn.answer().iter().any(|n| n.id == id),
                        "range member {id} closer than the k-th neighbor missing from kNN"
                    );
                }
            }
        }
    }
}

#[test]
fn monitors_survive_population_collapse() {
    // Remove objects until only the query remains; all monitors must
    // degrade to empty answers without panicking.
    let world = Workload::from_config(&WorkloadConfig::network_mono(50, 31));
    let mut g = grid_of(&world, 8);
    let q_id = ObjectId(0);
    let q = g.position(q_id).unwrap();
    let mut ops = OpCounters::new();
    let mut knn = KnnMonitor::initial(&g, q, Some(q_id), 5, &mut ops);
    let mut range = RangeMonitor::initial(&g, q, 100.0, Some(q_id), &mut ops);
    let mut rknn = MonoIgernK::initial(&g, q, Some(q_id), 2, &mut ops);
    for i in 1..50u32 {
        g.remove(ObjectId(i));
        knn.incremental(&g, q, &mut ops);
        range.incremental(&g, q, &mut ops);
        rknn.incremental(&g, q, &mut ops);
    }
    assert!(knn.answer().is_empty());
    assert!(range.is_empty());
    assert!(rknn.rnn().is_empty());
}
