//! End-to-end equivalence between the network serving layer and an
//! offline [`TickRunner`] fed the identical update sequence.
//!
//! The server must be a transparent transport: a client that folds the
//! pushed snapshots and deltas into local state sees, after every
//! `TICK_END`, exactly the answer the offline engine computes — for all
//! eight algorithms, at one worker and at four, across mid-stream
//! subscribe/unsubscribe, object insertion/removal, and a slow-consumer
//! coalesce event. Malformed input must never take the server down.
//!
//! Set `IGERN_TEST_DISTANCE=network` to run the lockstep drives under
//! road-network distance: both stores carry the same synthetic road
//! graph and every subscription opens in `DistanceMode::Network` over
//! the protocol's v2 mode byte (the CI network leg).

mod common;

use std::time::Duration;

use common::Lcg;
use igern::core::processor::Algorithm;
use igern::core::types::{DistanceMode, ObjectKind};
use igern::core::{NetworkSpace, SpatialStore};
use igern::engine::{Placement, TickRunner};
use igern::geom::Aabb;
use igern::grid::ObjectId;
use igern::mobgen::{build_synthetic_network, SyntheticNetworkConfig};
use igern::server::client::Event;
use igern::server::{Client, ErrorCode, Server, ServerConfig, SlowConsumerPolicy, TickMode};

const SIDE: f64 = 100.0;
const N: usize = 40;
const A_COUNT: usize = 20;
const TICKS: u64 = 200;
const WAIT: Duration = Duration::from_secs(30);

fn space() -> Aabb {
    Aabb::from_coords(0.0, 0.0, SIDE, SIDE)
}

fn kinds() -> Vec<ObjectKind> {
    (0..N)
        .map(|i| {
            if i < A_COUNT {
                ObjectKind::A
            } else {
                ObjectKind::B
            }
        })
        .collect()
}

/// `IGERN_TEST_DISTANCE=network` switches the lockstep drives to
/// road-network distance (which must stay transparent over the wire).
fn distance_mode() -> DistanceMode {
    match std::env::var("IGERN_TEST_DISTANCE")
        .as_deref()
        .map(str::trim)
    {
        Ok("network") => DistanceMode::Network,
        Ok("") | Ok("euclidean") | Err(_) => DistanceMode::Euclidean,
        Ok(other) => panic!("IGERN_TEST_DISTANCE must be euclidean|network, got {other:?}"),
    }
}

fn seeded_store(seed: u64) -> SpatialStore {
    let mut rng = Lcg::new(seed);
    let pts = rng.points(N, SIDE);
    let mut store = SpatialStore::new(space(), 8, kinds());
    if distance_mode() == DistanceMode::Network {
        store.set_network(std::sync::Arc::new(NetworkSpace::from_network(
            &build_synthetic_network(&SyntheticNetworkConfig {
                k: 8,
                space: space(),
                seed,
                ..Default::default()
            }),
        )));
    }
    store.load(&pts);
    store
}

fn manual_config(workers: usize) -> ServerConfig {
    ServerConfig {
        space: space(),
        grid: 8,
        workers,
        tick_mode: TickMode::Manual,
        ..ServerConfig::default()
    }
}

fn ids(answer: &[ObjectId]) -> Vec<u32> {
    answer.iter().map(|o| o.0).collect()
}

/// The eight algorithm variants the paper pipeline supports.
fn all_algorithms() -> [Algorithm; 8] {
    [
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::TplRepeat,
        Algorithm::IgernBi,
        Algorithm::VoronoiRepeat,
        Algorithm::IgernMonoK(2),
        Algorithm::IgernBiK(2),
        Algorithm::Knn(3),
    ]
}

/// Drive a 200-tick workload through the server and an offline runner
/// in lockstep, comparing every live subscription's answer every tick.
fn drive_equivalence(workers: usize) {
    let seed = 0xC0FF_EE00 ^ workers as u64;
    let mode = distance_mode();
    let mut reference = TickRunner::new(seeded_store(seed), workers, Placement::RoundRobin);
    let mut server = Server::start(("127.0.0.1", 0), seeded_store(seed), manual_config(workers))
        .expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let algos = all_algorithms();
    // First six algorithms subscribe up front (anchors 0..6, all kind
    // A); the last two join mid-stream at tick 80.
    let mut live: Vec<(u32, usize)> = Vec::new();
    for (i, &algo) in algos.iter().take(6).enumerate() {
        let sid = client
            .subscribe_in(i as u32, algo, mode)
            .expect("subscribe");
        let qid = reference
            .add_query_in(ObjectId(i as u32), algo, mode)
            .expect("ref query");
        live.push((sid, qid));
    }

    let mut rng = Lcg::new(seed ^ 0xDEAD_BEEF);
    let mut alive: Vec<u32> = (0..N as u32).collect();
    let mut removed_sid = None;

    for tick in 1..=TICKS {
        // A handful of random moves per tick — anchors included.
        for _ in 0..6 {
            let id = alive[rng.usize(alive.len())];
            let p = rng.point(SIDE);
            let kind = reference.store().kind(ObjectId(id));
            client.upsert(id, kind, p.x, p.y).expect("upsert");
            reference.apply_update(ObjectId(id), p);
        }
        match tick {
            60 => {
                // Dynamic insertion of a brand-new object.
                let p = rng.point(SIDE);
                client.upsert(40, ObjectKind::B, p.x, p.y).expect("insert");
                reference.insert_object(ObjectId(40), ObjectKind::B, p);
                alive.push(40);
            }
            70 => {
                let p = rng.point(SIDE);
                client.upsert(41, ObjectKind::A, p.x, p.y).expect("insert");
                reference.insert_object(ObjectId(41), ObjectKind::A, p);
                alive.push(41);
            }
            80 => {
                for (i, &algo) in algos.iter().enumerate().skip(6) {
                    let sid = client
                        .subscribe_in(i as u32, algo, mode)
                        .expect("late subscribe");
                    let qid = reference
                        .add_query_in(ObjectId(i as u32), algo, mode)
                        .expect("ref");
                    live.push((sid, qid));
                }
            }
            120 => {
                client.remove_object(40).expect("remove");
                reference.remove_object(ObjectId(40));
                alive.retain(|&id| id != 40);
            }
            140 => {
                // Mid-stream unsubscribe; its engine slot becomes a
                // tombstone on both sides.
                let (sid, qid) = live.remove(1);
                client.unsubscribe(sid).expect("unsubscribe");
                reference.remove_query(qid);
                removed_sid = Some(sid);
            }
            160 => {
                // A new subscription after the unsubscribe reuses the
                // tombstoned slot identically on both sides.
                let sid = client
                    .subscribe_in(8, Algorithm::IgernMono, mode)
                    .expect("resub");
                let qid = reference
                    .add_query_in(ObjectId(8), Algorithm::IgernMono, mode)
                    .expect("ref resub");
                live.push((sid, qid));
            }
            _ => {}
        }
        client.step().expect("step");
        reference.step(&[]);
        client.wait_tick_end(tick, WAIT).expect("tick end");
        for &(sid, qid) in &live {
            assert_eq!(
                client.answer(sid),
                ids(reference.answer(qid)),
                "tick {tick}, sid {sid}, qid {qid}, workers {workers}"
            );
        }
        if let Some(sid) = removed_sid {
            assert!(
                client.answer(sid).is_empty(),
                "unsubscribed sid {sid} kept an answer"
            );
        }
    }
    assert_eq!(reference.tick(), TICKS);
    server.stop();
}

#[test]
fn serial_server_matches_offline_runner_for_all_algorithms() {
    drive_equivalence(1);
}

#[test]
fn sharded_server_matches_offline_runner_for_all_algorithms() {
    drive_equivalence(4);
}

/// A client that stops reading long enough to overflow its outbound
/// queue under the coalesce policy must converge back to the exact
/// offline answer from the pushed snapshots.
#[test]
fn coalesce_recovers_exact_answers_after_overflow() {
    let seed = 0xFEED_F00D;
    let mode = distance_mode();
    let mut reference = TickRunner::new(seeded_store(seed), 1, Placement::RoundRobin);
    // A 2-frame cap is smaller than one tick's batch (two deltas plus
    // TICK_END), so the overflow → shed → forced-snapshot path fires
    // every tick with answer churn, whatever the socket buffers absorb.
    let cfg = ServerConfig {
        outbound_queue_frames: 2,
        slow_consumer: SlowConsumerPolicy::Coalesce,
        ..manual_config(1)
    };
    let mut server = Server::start(("127.0.0.1", 0), seeded_store(seed), cfg).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let sid_mono = client
        .subscribe_in(0, Algorithm::IgernMono, mode)
        .expect("sub");
    let sid_knn = client
        .subscribe_in(1, Algorithm::Knn(3), mode)
        .expect("sub");
    let q_mono = reference
        .add_query_in(ObjectId(0), Algorithm::IgernMono, mode)
        .expect("ref");
    let q_knn = reference
        .add_query_in(ObjectId(1), Algorithm::Knn(3), mode)
        .expect("ref");

    // 30 ticks of churn without reading a single push: with a 4-frame
    // cap the queue overflows repeatedly and sheds tick traffic.
    let mut rng = Lcg::new(seed ^ 1);
    let total = 30;
    for _ in 1..=total {
        for _ in 0..4 {
            let id = rng.usize(N) as u32;
            let p = rng.point(SIDE);
            let kind = reference.store().kind(ObjectId(id));
            client.upsert(id, kind, p.x, p.y).expect("upsert");
            reference.apply_update(ObjectId(id), p);
        }
        client.step().expect("step");
        reference.step(&[]);
        // Give the tick thread time to run (and overflow the queue).
        std::thread::sleep(Duration::from_millis(5));
    }

    // Now drain. The surviving stream is a suffix of snapshots; after
    // the final TICK_END the folded answers must be bit-exact.
    client.wait_tick_end(total, WAIT).expect("final tick end");
    assert_eq!(client.answer(sid_mono), ids(reference.answer(q_mono)));
    assert_eq!(client.answer(sid_knn), ids(reference.answer(q_knn)));
    assert!(
        server.metrics().slow_consumer_total.get() > 0,
        "the tiny queue never overflowed — the coalesce path was not exercised"
    );
    server.stop();
}

/// Garbage from one client closes only that connection; a well-behaved
/// client on the same server keeps getting served, and the error is
/// counted.
#[test]
fn malformed_frames_poison_only_their_own_connection() {
    let seed = 0xBAD_F00D;
    let mut server =
        Server::start(("127.0.0.1", 0), seeded_store(seed), manual_config(1)).expect("bind server");
    let mut good = Client::connect(server.local_addr()).expect("connect good");
    let sid = good.subscribe(0, Algorithm::IgernMono).expect("subscribe");

    // Evil client 1: oversized length prefix.
    let mut evil = Client::connect(server.local_addr()).expect("connect evil");
    evil.send_raw(&[0xff, 0xff, 0xff, 0xff]).expect("inject");
    // Evil client 2: valid envelope around a known type with a garbage
    // body (an upsert frame three bytes long).
    let mut evil2 = Client::connect(server.local_addr()).expect("connect evil2");
    evil2.send_raw(&[3, 0, 0, 0, 2, 1, 2]).expect("inject");

    // Both evil connections get an ERROR frame and then EOF.
    for bad in [&mut evil, &mut evil2] {
        let mut saw_error = false;
        loop {
            match bad.poll_event(Duration::from_secs(5)) {
                Ok(Some(Event::Error { code, .. })) => {
                    assert_eq!(code, ErrorCode::Malformed);
                    saw_error = true;
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        assert!(saw_error, "malformed input did not produce an ERROR frame");
    }

    // A well-framed *unknown* frame type is forward-compatibility, not
    // an attack: it is skipped and the connection stays fully usable.
    let mut futur = Client::connect(server.local_addr()).expect("connect futuristic");
    futur.send_raw(&[3, 0, 0, 0, 0xEE, 1, 2]).expect("inject");
    futur.ping(7).expect("ping after unknown frame type");
    assert!(
        server.metrics().frames_skipped_total.get() >= 1,
        "the skipped frame was not counted"
    );

    // The good client is still served.
    good.upsert(5, ObjectKind::A, 1.0, 1.0).expect("upsert");
    good.step().expect("step");
    good.wait_tick_end(1, WAIT).expect("tick end");
    assert!(!good.answer(sid).is_empty() || good.answer(sid).is_empty()); // still responsive
    good.ping(42).expect("ping after the storm");
    assert!(
        server.metrics().protocol_errors_total.get() >= 2,
        "protocol errors were not counted"
    );
    server.stop();
}

/// Semantic rejections arrive as ERROR frames and leave the connection
/// fully usable.
#[test]
fn semantic_errors_keep_the_connection_alive() {
    let seed = 0x5EED;
    let mut server =
        Server::start(("127.0.0.1", 0), seeded_store(seed), manual_config(1)).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let expect_error = |client: &mut Client, want: ErrorCode| loop {
        match client.wait_event(WAIT).expect("event") {
            Event::Error { code, .. } => {
                assert_eq!(code, want);
                break;
            }
            _ => continue,
        }
    };

    // Subscribe against a nonexistent anchor.
    client.subscribe(99, Algorithm::IgernMono).expect("acked");
    expect_error(&mut client, ErrorCode::UnknownObject);
    // Bichromatic query anchored at a kind-B object.
    client.subscribe(25, Algorithm::IgernBi).expect("acked");
    expect_error(&mut client, ErrorCode::NotKindA);
    // k = 0.
    client.subscribe(0, Algorithm::Knn(0)).expect("acked");
    expect_error(&mut client, ErrorCode::ZeroK);
    // Out-of-bounds upsert.
    client
        .upsert(0, ObjectKind::A, SIDE * 2.0, 0.0)
        .expect("sent");
    expect_error(&mut client, ErrorCode::OutOfBounds);
    // Removing a live anchor.
    let sid = client.subscribe(0, Algorithm::IgernMono).expect("sub");
    client.remove_object(0).expect("sent");
    expect_error(&mut client, ErrorCode::AnchorInUse);
    // Unsubscribing a sid we do not own.
    client.unsubscribe(7777).expect("sent");
    expect_error(&mut client, ErrorCode::UnknownSubscription);
    // Kind change of an existing object.
    client.upsert(0, ObjectKind::B, 1.0, 1.0).expect("sent");
    expect_error(&mut client, ErrorCode::KindMismatch);

    // After all of that, the connection still ticks.
    client.step().expect("step");
    client.wait_tick_end(1, WAIT).expect("tick end");
    let _ = client.answer(sid);
    server.stop();
}

/// An internal sub-index desync — a connection listing a subscription
/// id the tick thread's sub table no longer knows — must not take the
/// tick thread down: the tick completes, the desync is counted in
/// `igern_server_sub_desync_total`, and the server keeps serving.
#[test]
fn injected_sub_desync_is_survived_and_counted() {
    let seed = 0xDE_517C;
    let mut server =
        Server::start(("127.0.0.1", 0), seeded_store(seed), manual_config(1)).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let sid = client
        .subscribe(0, Algorithm::IgernMono)
        .expect("subscribe");
    client.step().expect("step");
    client.wait_tick_end(1, WAIT).expect("tick end");

    // Rip the subscription out of the tick thread's sub table while the
    // connection still lists it, then force a tick with answer churn so
    // the delta fan-out walks the now-dangling sid.
    server.debug_desync_sub(sid);
    client.upsert(1, ObjectKind::A, 1.0, 1.0).expect("upsert");
    client.step().expect("step");
    client
        .wait_tick_end(2, WAIT)
        .expect("tick survives the desync");
    assert!(
        server.metrics().sub_desync_total.get() >= 1,
        "the injected desync was not counted"
    );

    // The server is still fully serviceable: a fresh subscription on
    // the same connection answers on the next tick.
    let sid2 = client.subscribe(2, Algorithm::Knn(3)).expect("resubscribe");
    client.upsert(3, ObjectKind::A, 2.0, 2.0).expect("upsert");
    client.step().expect("step");
    client
        .wait_tick_end(3, WAIT)
        .expect("tick end after recovery");
    assert_eq!(
        client.answer(sid2).len(),
        3,
        "knn answer missing after the desync"
    );
    server.stop();
}

/// A wrong protocol version is rejected with VERSION_MISMATCH at
/// handshake.
#[test]
fn version_mismatch_is_rejected_at_handshake() {
    let mut server = Server::start(("127.0.0.1", 0), seeded_store(0x1111), manual_config(1))
        .expect("bind server");
    // Raw socket: HELLO with version 999.
    let mut raw = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    std::io::Write::write_all(&mut raw, &[3, 0, 0, 0, 1, 231, 3]).expect("send");
    let mut buf = Vec::new();
    let _ = std::io::Read::read_to_end(&mut raw, &mut buf);
    // The reply must be one decodable ERROR frame with the right code.
    assert!(buf.len() > 5, "no reply before close");
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    let frame = igern::server::Frame::decode(&buf[4..4 + len]).expect("decodable reply");
    match frame {
        igern::server::Frame::Error { code, .. } => {
            assert_eq!(code, ErrorCode::VersionMismatch)
        }
        other => panic!("expected ERROR, got {other:?}"),
    }
    server.stop();
}

/// Timer mode pushes ticks without STEP frames.
#[test]
fn timer_mode_ticks_on_its_own() {
    let cfg = ServerConfig {
        tick_mode: TickMode::Every(Duration::from_millis(10)),
        ..manual_config(1)
    };
    let mut server =
        Server::start(("127.0.0.1", 0), seeded_store(0x7777), cfg).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let _sid = client
        .subscribe(0, Algorithm::IgernMono)
        .expect("subscribe");
    let (t1, _) = client.wait_tick_end(1, WAIT).expect("first tick");
    let (t2, _) = client.wait_tick_end(t1 + 3, WAIT).expect("later tick");
    assert!(t2 >= t1 + 3, "ticks did not advance on the timer");
    server.stop();
}

/// Graceful shutdown: a final tick drains in-flight ingestion and every
/// queued push is flushed before the socket closes.
#[test]
fn shutdown_drains_in_flight_updates() {
    let seed = 0xD00D;
    let mut reference = TickRunner::new(seeded_store(seed), 1, Placement::RoundRobin);
    let mut server =
        Server::start(("127.0.0.1", 0), seeded_store(seed), manual_config(1)).expect("bind server");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let sid = client
        .subscribe(0, Algorithm::IgernMono)
        .expect("subscribe");
    let qid = reference
        .add_query(ObjectId(0), Algorithm::IgernMono)
        .expect("ref");

    // Updates followed immediately by a client-initiated SHUTDOWN: the
    // server must evaluate them in its final tick and push the result.
    let mut rng = Lcg::new(seed);
    for _ in 0..10 {
        let id = rng.usize(N) as u32;
        let p = rng.point(SIDE);
        let kind = reference.store().kind(ObjectId(id));
        client.upsert(id, kind, p.x, p.y).expect("upsert");
        reference.apply_update(ObjectId(id), p);
    }
    client.shutdown_server().expect("shutdown frame");
    reference.step(&[]);

    client.wait_tick_end(1, WAIT).expect("final push");
    assert_eq!(client.answer(sid), ids(reference.answer(qid)));
    // The server then closes the socket cleanly.
    loop {
        match client.poll_event(Duration::from_secs(5)) {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("socket stayed open after shutdown"),
            Err(_) => break, // Closed
        }
    }
    server.wait();
}
