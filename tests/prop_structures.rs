//! Property-based tests over the supporting data structures: the R-tree
//! under churn, the cell bitset, order-k cleaning, and trace round-trips.

use igern::core::prune::{clean_dominated_k, recompute_alive_k};
use igern::geom::{Aabb, Point};
use igern::grid::{CellSet, Grid, ObjectId, OpCounters};
use igern::mobgen::RecordedTrace;
use igern_rtree::RTree;
use proptest::prelude::*;

const SPACE: f64 = 100.0;

fn point() -> impl Strategy<Value = Point> {
    (0.0..SPACE, 0.0..SPACE).prop_map(|(x, y)| Point::new(x, y))
}

/// A churn script: insert / remove / move operations.
#[derive(Debug, Clone)]
enum Op {
    Insert(Point),
    Remove(usize),
    Move(usize, Point),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            point().prop_map(Op::Insert),
            (any::<usize>()).prop_map(Op::Remove),
            (any::<usize>(), point()).prop_map(|(i, p)| Op::Move(i, p)),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The R-tree stays structurally valid and query-equivalent to a
    /// mirror map under arbitrary churn.
    #[test]
    fn rtree_churn_preserves_invariants(script in ops(), probe in point()) {
        let mut tree = RTree::new();
        let mut mirror: Vec<Option<Point>> = Vec::new();
        for op in script {
            match op {
                Op::Insert(p) => {
                    mirror.push(Some(p));
                    tree.insert(ObjectId(mirror.len() as u32 - 1), p);
                }
                Op::Remove(i) => {
                    let live: Vec<usize> = mirror
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let victim = live[i % live.len()];
                        mirror[victim] = None;
                        prop_assert!(tree.remove(ObjectId(victim as u32)).is_some());
                    }
                }
                Op::Move(i, p) => {
                    let live: Vec<usize> = mirror
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let target = live[i % live.len()];
                        mirror[target] = Some(p);
                        tree.update(ObjectId(target as u32), p);
                    }
                }
            }
        }
        tree.check_invariants();
        let live_count = mirror.iter().flatten().count();
        prop_assert_eq!(tree.len(), live_count);
        // NN equivalence with the mirror.
        let mut ops_ctr = OpCounters::new();
        let got = igern_rtree::nearest(&tree, probe, None, &mut ops_ctr).map(|n| n.dist_sq);
        let want = mirror
            .iter()
            .flatten()
            .map(|p| probe.dist_sq(*p))
            .fold(f64::INFINITY, f64::min);
        if live_count == 0 {
            prop_assert!(got.is_none());
        } else {
            prop_assert_eq!(got, Some(want));
        }
    }

    /// CellSet behaves like a reference HashSet under arbitrary flips.
    #[test]
    fn cellset_matches_reference(
        cap in 1usize..300,
        flips in prop::collection::vec((any::<usize>(), any::<bool>()), 0..200),
    ) {
        let mut set = CellSet::new(cap);
        let mut reference = std::collections::BTreeSet::new();
        for (raw, insert) in flips {
            let i = raw % cap;
            if insert {
                prop_assert_eq!(set.insert(i), reference.insert(i));
            } else {
                prop_assert_eq!(set.remove(i), reference.remove(&i));
            }
        }
        prop_assert_eq!(set.count(), reference.len());
        let got: Vec<usize> = set.iter().collect();
        let want: Vec<usize> = reference.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Order-k cleaning: every kept item has fewer than k kept dominators;
    /// every dropped item had at least k kept dominators; k ≥ len keeps
    /// everything.
    #[test]
    fn clean_dominated_k_postconditions(
        items in prop::collection::vec(point(), 0..25),
        q in point(),
        k in 1usize..5,
    ) {
        let mut tagged: Vec<(Point, usize)> = items.iter().copied().zip(0..).collect();
        clean_dominated_k(&mut tagged, q, k);
        let kept: Vec<Point> = tagged.iter().map(|&(p, _)| p).collect();
        // Post-condition on the kept set: fewer than k *nearer* kept
        // dominators (the sequential rule's guarantee — farther kept items
        // may still dominate a kept one when k ≥ 2, and that is fine: the
        // nearer item's bisector is the one bounding the region).
        for &p in &kept {
            let d_q = p.dist_sq(q);
            let nearer_dominators = kept
                .iter()
                .filter(|&&other| {
                    other != p && other.dist_sq(q) <= d_q && p.dist_sq(other) < d_q
                })
                .count();
            prop_assert!(
                nearer_dominators < k,
                "kept item with {nearer_dominators} nearer kept dominators"
            );
        }
        // Dropped items must be k-dominated by the kept set.
        let kept_tags: Vec<usize> = tagged.iter().map(|&(_, t)| t).collect();
        for (i, &p) in items.iter().enumerate() {
            if kept_tags.contains(&i) {
                continue;
            }
            let dominators = kept
                .iter()
                .filter(|&&other| p.dist_sq(other) < p.dist_sq(q))
                .count();
            prop_assert!(dominators >= k, "dropped item with only {dominators} dominators");
        }
        // Large k keeps everything.
        let mut all: Vec<(Point, usize)> = items.iter().copied().zip(0..).collect();
        clean_dominated_k(&mut all, q, items.len() + 1);
        prop_assert_eq!(all.len(), items.len());
    }

    /// The order-k alive region covers every point with fewer than k
    /// closer sites.
    #[test]
    fn order_k_region_is_complete(
        sites in prop::collection::vec(point(), 0..10),
        q in point(),
        k in 1usize..4,
        probes in prop::collection::vec(point(), 20),
    ) {
        let grid = Grid::new(Aabb::from_coords(0.0, 0.0, SPACE, SPACE), 12);
        let alive = recompute_alive_k(&grid, q, &sites, k);
        for p in probes {
            let d_q = p.dist_sq(q);
            let closer = sites.iter().filter(|s| p.dist_sq(**s) < d_q).count();
            if closer < k {
                prop_assert!(
                    alive.contains(grid.cell_of_point(p)),
                    "under-k probe {p} landed in a dead cell"
                );
            }
        }
    }

    /// Trace save/load round-trips arbitrary update streams exactly.
    #[test]
    fn trace_roundtrip(
        initial in prop::collection::vec(point(), 1..20),
        tick_shape in prop::collection::vec(prop::collection::vec((any::<u32>(), point()), 0..10), 0..6),
    ) {
        let n = initial.len() as u32;
        let ticks: Vec<Vec<igern::mobgen::Update>> = tick_shape
            .into_iter()
            .map(|t| {
                t.into_iter()
                    .map(|(id, pos)| igern::mobgen::Update { id: id % n, pos })
                    .collect()
            })
            .collect();
        let trace = RecordedTrace::from_parts(
            Aabb::from_coords(0.0, 0.0, SPACE, SPACE),
            initial,
            ticks,
        );
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(std::io::BufReader::new(buf.as_slice())).unwrap();
        prop_assert_eq!(loaded, trace);
    }
}
