//! Randomized property tests over the supporting data structures: the
//! R-tree under churn, the cell bitset, order-k cleaning, and trace
//! round-trips. Each property is checked over many seeded random cases
//! (the in-repo [`common::Lcg`] replaces the former proptest dependency).

mod common;

use common::Lcg;
use igern::core::prune::{clean_dominated_k, recompute_alive_k};
use igern::geom::{Aabb, Point};
use igern::grid::{CellSet, Grid, ObjectId, OpCounters};
use igern::mobgen::RecordedTrace;
use igern_rtree::RTree;

const SPACE: f64 = 100.0;

/// A churn script: insert / remove / move operations.
#[derive(Debug, Clone)]
enum Op {
    Insert(Point),
    Remove(usize),
    Move(usize, Point),
}

fn random_script(rng: &mut Lcg) -> Vec<Op> {
    let len = 1 + rng.usize(119);
    (0..len)
        .map(|_| match rng.usize(3) {
            0 => Op::Insert(rng.point(SPACE)),
            1 => Op::Remove(rng.usize(usize::MAX - 1)),
            _ => Op::Move(rng.usize(usize::MAX - 1), rng.point(SPACE)),
        })
        .collect()
}

/// The R-tree stays structurally valid and query-equivalent to a mirror
/// map under arbitrary churn.
#[test]
fn rtree_churn_preserves_invariants() {
    let mut rng = Lcg::new(0x5eed_0001);
    for case in 0..48 {
        let script = random_script(&mut rng);
        let probe = rng.point(SPACE);
        let mut tree = RTree::new();
        let mut mirror: Vec<Option<Point>> = Vec::new();
        for op in script {
            match op {
                Op::Insert(p) => {
                    mirror.push(Some(p));
                    tree.insert(ObjectId(mirror.len() as u32 - 1), p).unwrap();
                }
                Op::Remove(i) => {
                    let live: Vec<usize> = mirror
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let victim = live[i % live.len()];
                        mirror[victim] = None;
                        assert!(tree.remove(ObjectId(victim as u32)).is_some());
                    }
                }
                Op::Move(i, p) => {
                    let live: Vec<usize> = mirror
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| s.is_some())
                        .map(|(i, _)| i)
                        .collect();
                    if !live.is_empty() {
                        let target = live[i % live.len()];
                        mirror[target] = Some(p);
                        tree.update(ObjectId(target as u32), p).unwrap();
                    }
                }
            }
        }
        tree.check_invariants();
        let live_count = mirror.iter().flatten().count();
        assert_eq!(tree.len(), live_count, "case {case}");
        // NN equivalence with the mirror.
        let mut ops_ctr = OpCounters::new();
        let got = igern_rtree::nearest(&tree, probe, None, &mut ops_ctr).map(|n| n.dist_sq);
        let want = mirror
            .iter()
            .flatten()
            .map(|p| probe.dist_sq(*p))
            .fold(f64::INFINITY, f64::min);
        if live_count == 0 {
            assert!(got.is_none(), "case {case}");
        } else {
            assert_eq!(got, Some(want), "case {case}");
        }
    }
}

/// CellSet behaves like a reference BTreeSet under arbitrary flips.
#[test]
fn cellset_matches_reference() {
    let mut rng = Lcg::new(0x5eed_0002);
    for case in 0..48 {
        let cap = 1 + rng.usize(299);
        let mut set = CellSet::new(cap);
        let mut reference = std::collections::BTreeSet::new();
        for _ in 0..rng.usize(200) {
            let i = rng.usize(cap);
            if rng.bool(0.5) {
                assert_eq!(set.insert(i), reference.insert(i), "case {case}");
            } else {
                assert_eq!(set.remove(i), reference.remove(&i), "case {case}");
            }
        }
        assert_eq!(set.count(), reference.len(), "case {case}");
        let got: Vec<usize> = set.iter().collect();
        let want: Vec<usize> = reference.into_iter().collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// Order-k cleaning: every kept item has fewer than k kept dominators;
/// every dropped item had at least k kept dominators; k ≥ len keeps
/// everything.
#[test]
fn clean_dominated_k_postconditions() {
    let mut rng = Lcg::new(0x5eed_0003);
    for case in 0..48 {
        let n_items = rng.usize(25);
        let items = rng.points(n_items, SPACE);
        let q = rng.point(SPACE);
        let k = 1 + rng.usize(4);
        let mut tagged: Vec<(Point, usize)> = items.iter().copied().zip(0..).collect();
        clean_dominated_k(&mut tagged, q, k);
        let kept: Vec<Point> = tagged.iter().map(|&(p, _)| p).collect();
        // Post-condition on the kept set: fewer than k *nearer* kept
        // dominators (the sequential rule's guarantee — farther kept items
        // may still dominate a kept one when k ≥ 2, and that is fine: the
        // nearer item's bisector is the one bounding the region).
        for &p in &kept {
            let d_q = p.dist_sq(q);
            let nearer_dominators = kept
                .iter()
                .filter(|&&other| other != p && other.dist_sq(q) <= d_q && p.dist_sq(other) < d_q)
                .count();
            assert!(
                nearer_dominators < k,
                "case {case}: kept item with {nearer_dominators} nearer kept dominators"
            );
        }
        // Dropped items must be k-dominated by the kept set.
        let kept_tags: Vec<usize> = tagged.iter().map(|&(_, t)| t).collect();
        for (i, &p) in items.iter().enumerate() {
            if kept_tags.contains(&i) {
                continue;
            }
            let dominators = kept
                .iter()
                .filter(|&&other| p.dist_sq(other) < p.dist_sq(q))
                .count();
            assert!(
                dominators >= k,
                "case {case}: dropped item with only {dominators} dominators"
            );
        }
        // Large k keeps everything.
        let mut all: Vec<(Point, usize)> = items.iter().copied().zip(0..).collect();
        clean_dominated_k(&mut all, q, items.len() + 1);
        assert_eq!(all.len(), items.len(), "case {case}");
    }
}

/// The order-k alive region covers every point with fewer than k closer
/// sites.
#[test]
fn order_k_region_is_complete() {
    let mut rng = Lcg::new(0x5eed_0004);
    for case in 0..48 {
        let n_sites = rng.usize(10);
        let sites = rng.points(n_sites, SPACE);
        let q = rng.point(SPACE);
        let k = 1 + rng.usize(3);
        let probes = rng.points(20, SPACE);
        let grid = Grid::new(Aabb::from_coords(0.0, 0.0, SPACE, SPACE), 12);
        let alive = recompute_alive_k(&grid, q, &sites, k);
        for p in probes {
            let d_q = p.dist_sq(q);
            let closer = sites.iter().filter(|s| p.dist_sq(**s) < d_q).count();
            if closer < k {
                assert!(
                    alive.contains(grid.cell_of_point(p)),
                    "case {case}: under-k probe {p} landed in a dead cell"
                );
            }
        }
    }
}

/// Trace save/load round-trips arbitrary update streams exactly.
#[test]
fn trace_roundtrip() {
    let mut rng = Lcg::new(0x5eed_0005);
    for case in 0..48 {
        let n_initial = 1 + rng.usize(19);
        let initial = rng.points(n_initial, SPACE);
        let n = initial.len() as u32;
        let ticks: Vec<Vec<igern::mobgen::Update>> = (0..rng.usize(6))
            .map(|_| {
                (0..rng.usize(10))
                    .map(|_| igern::mobgen::Update {
                        id: rng.usize(n as usize) as u32,
                        pos: rng.point(SPACE),
                    })
                    .collect()
            })
            .collect();
        let trace =
            RecordedTrace::from_parts(Aabb::from_coords(0.0, 0.0, SPACE, SPACE), initial, ticks);
        let mut buf = Vec::new();
        trace.save(&mut buf).unwrap();
        let loaded = RecordedTrace::load(std::io::BufReader::new(buf.as_slice())).unwrap();
        assert_eq!(loaded, trace, "case {case}");
    }
}
