//! Observability-layer integration tests.
//!
//! * Skip carry-over: a query-tick skipped by dirty-region routing must
//!   report the `monitored` / `answer_size` / `region_area` of the most
//!   recent *evaluated* tick, identically on the serial processor and
//!   the sharded engine at every worker count.
//! * Desync resilience: a bucket/position desync injected into the store
//!   must not panic the tick — the affected object is treated as removed,
//!   the tick completes, and `desync_total` counts the event.

mod common;

use common::Lcg;
use igern::core::obs::{MetricsRegistry, PipelineMetrics};
use igern::core::processor::{Algorithm, Processor};
use igern::core::types::ObjectKind;
use igern::core::SpatialStore;
use igern::engine::{EngineMetrics, Placement, ShardedEngine};
use igern::geom::{Aabb, Point};
use igern::grid::ObjectId;

const SIDE: f64 = 100.0;
const N_A: usize = 36;
const N_B: usize = 36;
const TICKS: usize = 80;

fn loaded_store(seed: u64) -> SpatialStore {
    let mut kinds = vec![ObjectKind::A; N_A];
    kinds.extend(vec![ObjectKind::B; N_B]);
    let mut store = SpatialStore::new(Aabb::from_coords(0.0, 0.0, SIDE, SIDE), 16, kinds);
    let pts = Lcg::new(seed).points(N_A + N_B, SIDE);
    store.load(&pts);
    store
}

/// Walk one query's history asserting every skipped sample repeats the
/// carried-over fields of the last evaluated sample before it. Returns
/// `(evaluated, skipped)` counts so callers can assert both paths ran.
fn check_carryover(history: &igern::core::history::History, ctx: &str) -> (usize, usize) {
    let mut last_eval: Option<&igern::core::metrics::TickSample> = None;
    let mut evaluated = 0usize;
    let mut skipped = 0usize;
    for s in history.iter() {
        if s.skipped {
            let prev = last_eval
                .unwrap_or_else(|| panic!("{ctx}: tick {} skipped before any evaluation", s.tick));
            assert_eq!(
                s.monitored, prev.monitored,
                "{ctx}: tick {} skipped but monitored diverged from last evaluated tick {}",
                s.tick, prev.tick
            );
            assert_eq!(
                s.answer_size, prev.answer_size,
                "{ctx}: tick {} skipped but answer_size diverged from last evaluated tick {}",
                s.tick, prev.tick
            );
            assert_eq!(
                s.region_area, prev.region_area,
                "{ctx}: tick {} skipped but region_area diverged from last evaluated tick {}",
                s.tick, prev.tick
            );
            skipped += 1;
        } else {
            last_eval = Some(s);
            evaluated += 1;
        }
    }
    (evaluated, skipped)
}

/// Skipped ticks must carry the last evaluated tick's `monitored`,
/// `answer_size`, and `region_area` forward unchanged — on the serial
/// processor and on the sharded engine, which must also agree with each
/// other sample-for-sample.
#[test]
fn skipped_ticks_carry_over_last_evaluated_state() {
    const ALGOS: [Algorithm; 4] = [
        Algorithm::IgernMono,
        Algorithm::Crnn,
        Algorithm::IgernBi,
        Algorithm::IgernMonoK(2),
    ];
    for workers in [1usize, 2, 4] {
        let seed = 0xca11_0ff5;
        let mut serial = Processor::new(loaded_store(seed));
        let mut engine = ShardedEngine::new(loaded_store(seed), workers, Placement::RoundRobin);
        let queries: Vec<usize> = ALGOS
            .iter()
            .enumerate()
            .map(|(i, &algo)| {
                let obj = ObjectId(i as u32 * 4);
                let qs = serial.add_query(obj, algo);
                let qe = engine.add_query(obj, algo).expect("valid query");
                assert_eq!(qs, qe);
                qs
            })
            .collect();
        serial.evaluate_all();
        engine.evaluate_all();

        // Mostly-localized movement in the far corner, so anchors near
        // the origin routinely skip; occasional global moves force real
        // re-evaluations in between.
        let mut rng = Lcg::new(seed ^ 0x5eed);
        for _ in 0..TICKS {
            let mut ups: Vec<(ObjectId, Point)> = Vec::new();
            let global = rng.bool(0.2);
            for _ in 0..1 + rng.usize(6) {
                let id = ObjectId(rng.usize(N_A + N_B) as u32);
                let p = if global {
                    rng.point(SIDE)
                } else {
                    Point::new(rng.range_f64(85.0, 100.0), rng.range_f64(85.0, 100.0))
                };
                ups.push((id, p));
            }
            serial.step(&ups);
            engine.step(&ups);
        }

        let mut total_eval = 0usize;
        let mut total_skip = 0usize;
        for &q in &queries {
            let (se, ss) = check_carryover(serial.history(q), &format!("serial q{q}"));
            let (ee, es) =
                check_carryover(engine.history(q), &format!("engine q{q} workers {workers}"));
            assert_eq!((se, ss), (ee, es), "eval/skip split diverged for q{q}");
            // The two runners must agree sample-for-sample, not just in
            // aggregate.
            let sh = serial.history(q);
            let eh = engine.history(q);
            assert_eq!(sh.len(), eh.len());
            for (a, b) in sh.iter().zip(eh.iter()) {
                assert_eq!(a.tick, b.tick);
                assert_eq!(a.skipped, b.skipped);
                assert_eq!(a.monitored, b.monitored);
                assert_eq!(a.answer_size, b.answer_size);
                assert_eq!(a.region_area, b.region_area);
            }
            total_eval += se;
            total_skip += ss;
        }
        assert!(total_skip > 0, "stream never skipped — routing unexercised");
        assert!(total_eval > 0, "stream never evaluated");
    }
}

#[test]
fn desync_is_counted_and_the_tick_completes_serial() {
    let registry = MetricsRegistry::new();
    let metrics = PipelineMetrics::register(&registry, "t");
    let mut p = Processor::new(loaded_store(11));
    p.set_metrics(Some(metrics.clone()));
    p.set_skip_routing(false);
    let q = p.add_query(ObjectId(0), Algorithm::IgernMono);
    p.evaluate_all();
    let before = *p.history(q).latest().unwrap();
    assert!(!before.skipped);
    assert_eq!(metrics.desync_total.get(), 0);

    // Corrupt the anchor's position slot: the buckets still list it, the
    // position lookup fails — exactly the desync the hot path must
    // survive.
    assert!(p.debug_force_desync(ObjectId(0)));
    p.step(&[(ObjectId(5), Point::new(1.0, 1.0))]);

    assert!(metrics.desync_total.get() >= 1, "desync was not counted");
    let after = p.history(q).latest().unwrap();
    assert!(after.skipped, "desynced query must degrade to a skip");
    assert_eq!(after.monitored, before.monitored, "carry-over after desync");
    assert_eq!(after.answer_size, before.answer_size);
    assert_eq!(p.tick(), 1, "the tick must still complete");
}

#[test]
fn desync_is_counted_and_the_tick_completes_sharded() {
    let registry = MetricsRegistry::new();
    let metrics = EngineMetrics::register(&registry, "t", 2);
    let mut engine = ShardedEngine::new(loaded_store(13), 2, Placement::RoundRobin);
    engine.set_metrics(Some(metrics));
    engine.set_skip_routing(false);
    let q = engine
        .add_query(ObjectId(2), Algorithm::IgernMono)
        .expect("valid query");
    engine.evaluate_all();
    let before = *engine.history(q).latest().unwrap();

    assert!(engine.debug_force_desync(ObjectId(2)));
    engine.step(&[(ObjectId(7), Point::new(2.0, 2.0))]);

    let m = engine.metrics().expect("metrics attached");
    assert!(
        m.pipeline.desync_total.get() >= 1,
        "desync was not counted through the engine"
    );
    let after = engine.history(q).latest().unwrap();
    assert!(after.skipped);
    assert_eq!(after.monitored, before.monitored);
    assert_eq!(engine.tick(), 1);
}

/// A bichromatic query whose B-side develops desyncs must also survive:
/// verify() treats the missing objects as removed and counts each one.
#[test]
fn bichromatic_desync_is_survived_and_counted() {
    // A deterministic layout: the anchor A-object sits mid-domain with a
    // B cluster around it (all reverse nearest neighbors), the only other
    // A-object far away — so the alive region always covers the cluster.
    let kinds = vec![
        ObjectKind::A,
        ObjectKind::A,
        ObjectKind::B,
        ObjectKind::B,
        ObjectKind::B,
        ObjectKind::B,
    ];
    let mut store = SpatialStore::new(Aabb::from_coords(0.0, 0.0, SIDE, SIDE), 16, kinds);
    store.load(&[
        Point::new(50.0, 50.0),
        Point::new(5.0, 5.0),
        Point::new(45.0, 50.0),
        Point::new(55.0, 50.0),
        Point::new(50.0, 45.0),
        Point::new(50.0, 55.0),
    ]);
    let registry = MetricsRegistry::new();
    let metrics = PipelineMetrics::register(&registry, "t");
    let mut p = Processor::new(store);
    p.set_metrics(Some(metrics.clone()));
    p.set_skip_routing(false);
    let q = p.add_query(ObjectId(0), Algorithm::IgernBi);
    p.evaluate_all();
    assert_eq!(p.history(q).latest().unwrap().answer_size, 4);

    // Desync every B object: its bucket entry survives, the position
    // lookup fails. Moving the anchor forces the verification pass to
    // re-read the B grid, where it must skip-and-count each one.
    for i in 2..6 {
        assert!(p.debug_force_desync(ObjectId(i as u32)));
    }
    p.step(&[(ObjectId(0), Point::new(52.0, 50.0))]);
    assert!(
        metrics.desync_total.get() >= 1,
        "B-side desyncs were not counted"
    );
    let after = p.history(q).latest().unwrap();
    assert!(!after.skipped);
    assert_eq!(
        after.answer_size, 0,
        "desynced B-objects must be treated as removed"
    );
    assert_eq!(p.tick(), 1, "the tick must still complete");
}
